//! Typed requests and responses of the `flowd` wire protocol, and their
//! mapping to and from [`json::Value`] documents.
//!
//! Every frame is one JSON object. Requests carry an `"op"` discriminator;
//! responses carry `"ok": true` plus op-specific fields, or `"ok": false`
//! with a machine-readable `"code"` and a human-readable `"error"`. Graphs
//! are addressed by the 16-hex-digit session fingerprint returned from
//! `load_graph` (see [`crate::cache`]) — resending the same graph bytes
//! re-uses the cached prepared session.

use flowgraph::{EdgeId, NodeId};

use crate::json::Value;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered inline.
    Ping,
    /// Load (or re-touch) a graph and prepare a serving session for it.
    LoadGraph {
        /// Node count.
        nodes: u64,
        /// Undirected capacitated edges `(u, v, capacity)`.
        edges: Vec<(u32, u32, f64)>,
        /// Optional solver config as a `config_io`-shaped JSON document
        /// (re-serialized from the request's `"config"` object); `None`
        /// means the server default.
        config: Option<String>,
    },
    /// `(1+ε)` max-flow between two terminals of a loaded graph.
    MaxFlow {
        /// Session fingerprint from `load_graph`.
        graph: u64,
        /// Source.
        s: NodeId,
        /// Sink.
        t: NodeId,
        /// Return the full per-edge flow vector (large!) in the response.
        include_flow: bool,
    },
    /// Route a balanced demand vector on a loaded graph.
    Route {
        /// Session fingerprint from `load_graph`.
        graph: u64,
        /// One demand value per node, summing to ~0.
        demand: Vec<f64>,
    },
    /// Change edge capacities of a loaded graph in place.
    Update {
        /// Session fingerprint from `load_graph`.
        graph: u64,
        /// `(edge index, new capacity)` pairs; the last write wins when an
        /// edge repeats.
        changes: Vec<(u32, f64)>,
    },
    /// Server-wide serving counters.
    Stats,
    /// Stop accepting connections and exit the daemon.
    Shutdown,
}

/// A protocol-level failure code (the `"code"` field of error responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not a well-formed request.
    InvalidRequest,
    /// The fingerprint does not name a loaded graph (never loaded, or
    /// evicted from the session cache).
    UnknownGraph,
    /// The solver rejected the request (bad terminals, bad demand, …).
    GraphError,
    /// The server is shutting down.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::InvalidRequest => "invalid_request",
            ErrorCode::UnknownGraph => "unknown_graph",
            ErrorCode::GraphError => "graph_error",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }
}

/// Formats a fingerprint as the wire's 16-hex-digit string.
pub fn fingerprint_to_wire(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parses a wire fingerprint string.
pub fn fingerprint_from_wire(s: &str) -> Option<u64> {
    if s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit()) {
        u64::from_str_radix(s, 16).ok()
    } else {
        None
    }
}

/// Builds an error-response document.
pub fn error_response(code: ErrorCode, message: &str) -> Value {
    Value::obj(vec![
        ("ok", Value::Bool(false)),
        ("code", Value::Str(code.as_str().to_string())),
        ("error", Value::Str(message.to_string())),
    ])
}

/// Whether a response document reports success.
pub fn is_ok(response: &Value) -> bool {
    response.get("ok").and_then(Value::as_bool) == Some(true)
}

/// Parses one request frame. Error strings name the offending field, in the
/// `config_io` tradition: an operator should be able to fix the frame from
/// the message alone.
pub fn parse_request(doc: &Value) -> Result<Request, String> {
    let op = doc
        .get("op")
        .and_then(Value::as_str)
        .ok_or("request must be an object with a string \"op\" field")?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "load_graph" => {
            let nodes = doc
                .get("nodes")
                .and_then(Value::as_index)
                .ok_or("load_graph: \"nodes\" must be a non-negative integer")?;
            let edges_v = doc
                .get("edges")
                .and_then(Value::as_arr)
                .ok_or("load_graph: \"edges\" must be an array of [u, v, capacity] triples")?;
            let mut edges = Vec::with_capacity(edges_v.len());
            for (i, e) in edges_v.iter().enumerate() {
                let triple = e.as_arr().filter(|t| t.len() == 3);
                let parsed = triple.and_then(|t| {
                    let u = t[0].as_index()?;
                    let v = t[1].as_index()?;
                    let cap = t[2].as_f64()?;
                    let (u, v) = (u32::try_from(u).ok()?, u32::try_from(v).ok()?);
                    Some((u, v, cap))
                });
                match parsed {
                    Some(t) => edges.push(t),
                    None => {
                        return Err(format!(
                            "load_graph: edge {i} must be [u, v, capacity] with integer \
                             endpoints and a number capacity"
                        ))
                    }
                }
            }
            let config = match doc.get("config") {
                None | Some(Value::Null) => None,
                Some(obj @ Value::Obj(_)) => Some(
                    obj.to_json()
                        .map_err(|e| format!("load_graph: \"config\" is unserializable: {e}"))?,
                ),
                Some(_) => return Err("load_graph: \"config\" must be an object".into()),
            };
            Ok(Request::LoadGraph {
                nodes,
                edges,
                config,
            })
        }
        "max_flow" => {
            let graph = wire_graph(doc)?;
            let s = node_field(doc, "s")?;
            let t = node_field(doc, "t")?;
            let include_flow = match doc.get("include_flow") {
                None => false,
                Some(v) => v
                    .as_bool()
                    .ok_or("max_flow: \"include_flow\" must be a boolean")?,
            };
            Ok(Request::MaxFlow {
                graph,
                s,
                t,
                include_flow,
            })
        }
        "route" => {
            let graph = wire_graph(doc)?;
            let demand_v = doc
                .get("demand")
                .and_then(Value::as_arr)
                .ok_or("route: \"demand\" must be an array with one number per node")?;
            let mut demand = Vec::with_capacity(demand_v.len());
            for (i, x) in demand_v.iter().enumerate() {
                demand.push(
                    x.as_f64()
                        .ok_or_else(|| format!("route: demand[{i}] must be a number"))?,
                );
            }
            Ok(Request::Route { graph, demand })
        }
        "update" => {
            let graph = wire_graph(doc)?;
            let changes_v = doc
                .get("changes")
                .and_then(Value::as_arr)
                .ok_or("update: \"changes\" must be an array of [edge, capacity] pairs")?;
            let mut changes = Vec::with_capacity(changes_v.len());
            for (i, c) in changes_v.iter().enumerate() {
                let parsed = c.as_arr().filter(|p| p.len() == 2).and_then(|p| {
                    let e = u32::try_from(p[0].as_index()?).ok()?;
                    Some((e, p[1].as_f64()?))
                });
                match parsed {
                    Some(p) => changes.push(p),
                    None => {
                        return Err(format!(
                            "update: change {i} must be [edge, capacity] with an integer \
                             edge index and a number capacity"
                        ))
                    }
                }
            }
            Ok(Request::Update { graph, changes })
        }
        other => Err(format!("unknown op {other:?}")),
    }
}

fn wire_graph(doc: &Value) -> Result<u64, String> {
    doc.get("graph")
        .and_then(Value::as_str)
        .and_then(fingerprint_from_wire)
        .ok_or_else(|| "\"graph\" must be the 16-hex-digit fingerprint from load_graph".to_string())
}

fn node_field(doc: &Value, key: &str) -> Result<NodeId, String> {
    doc.get(key)
        .and_then(Value::as_index)
        .and_then(|x| u32::try_from(x).ok())
        .map(NodeId)
        .ok_or_else(|| format!("\"{key}\" must be a node index"))
}

/// Converts a typed update list into [`capprox::CapacityChange`] records
/// against the graph's *current* capacities, collapsing repeated edges to
/// their last write. The graph is read, not written — the caller applies the
/// changes after validating them.
pub fn collapse_changes(
    g: &flowgraph::Graph,
    changes: &[(u32, f64)],
) -> Result<Vec<capprox::CapacityChange>, flowgraph::GraphError> {
    let mut collapsed: Vec<capprox::CapacityChange> = Vec::with_capacity(changes.len());
    for &(e, new) in changes {
        let edge = EdgeId(e);
        if e as usize >= g.num_edges() {
            return Err(flowgraph::GraphError::EdgeOutOfRange {
                edge: e as usize,
                num_edges: g.num_edges(),
            });
        }
        if !(new.is_finite() && new > 0.0) {
            return Err(flowgraph::GraphError::InvalidWeight { value: new });
        }
        match collapsed.iter_mut().find(|c| c.edge == edge) {
            // Last write wins; `old` stays the pre-batch capacity.
            Some(c) => c.new = new,
            None => collapsed.push(capprox::CapacityChange {
                edge,
                old: g.capacity(edge),
                new,
            }),
        }
    }
    Ok(collapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn requests_parse_from_wire_documents() {
        let cases: Vec<(&str, Request)> = vec![
            (r#"{"op":"ping"}"#, Request::Ping),
            (r#"{"op":"stats"}"#, Request::Stats),
            (r#"{"op":"shutdown"}"#, Request::Shutdown),
            (
                r#"{"op":"max_flow","graph":"00000000000000ff","s":0,"t":24}"#,
                Request::MaxFlow {
                    graph: 0xff,
                    s: NodeId(0),
                    t: NodeId(24),
                    include_flow: false,
                },
            ),
            (
                r#"{"op":"update","graph":"0000000000000001","changes":[[3,2.5],[9,0.125]]}"#,
                Request::Update {
                    graph: 1,
                    changes: vec![(3, 2.5), (9, 0.125)],
                },
            ),
            (
                r#"{"op":"route","graph":"0000000000000001","demand":[1.0,-1.0]}"#,
                Request::Route {
                    graph: 1,
                    demand: vec![1.0, -1.0],
                },
            ),
            (
                r#"{"op":"load_graph","nodes":3,"edges":[[0,1,1.0],[1,2,2.0]],"config":{"epsilon":0.5}}"#,
                Request::LoadGraph {
                    nodes: 3,
                    edges: vec![(0, 1, 1.0), (1, 2, 2.0)],
                    config: Some(r#"{"epsilon":0.5}"#.to_string()),
                },
            ),
        ];
        for (doc, expected) in cases {
            assert_eq!(
                parse_request(&parse(doc).unwrap()).unwrap(),
                expected,
                "{doc}"
            );
        }
    }

    #[test]
    fn malformed_requests_name_the_offending_field() {
        for (doc, needle) in [
            (r#"{"s":1}"#, "op"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (
                r#"{"op":"max_flow","graph":"xyz","s":0,"t":1}"#,
                "fingerprint",
            ),
            (
                r#"{"op":"max_flow","graph":"0000000000000001","s":-1,"t":1}"#,
                "\"s\"",
            ),
            (r#"{"op":"load_graph","nodes":2,"edges":[[0,1]]}"#, "edge 0"),
            (
                r#"{"op":"load_graph","nodes":2,"edges":[[0,1,1.0]],"config":7}"#,
                "config",
            ),
            (
                r#"{"op":"update","graph":"0000000000000001","changes":[[0]]}"#,
                "change 0",
            ),
            (
                r#"{"op":"route","graph":"0000000000000001","demand":[1.0,"x"]}"#,
                "demand[1]",
            ),
        ] {
            let err = parse_request(&parse(doc).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err:?} lacks {needle:?}");
        }
    }

    #[test]
    fn fingerprints_round_trip_and_reject_junk() {
        for fp in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(fingerprint_from_wire(&fingerprint_to_wire(fp)), Some(fp));
        }
        for bad in ["", "123", "zzzzzzzzzzzzzzzz", "00000000000000001"] {
            assert_eq!(fingerprint_from_wire(bad), None);
        }
    }

    #[test]
    fn collapse_changes_keeps_last_write_and_prebatch_old() {
        let mut g = flowgraph::Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 4.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 2.0).unwrap();
        let collapsed = collapse_changes(&g, &[(0, 5.0), (1, 9.0), (0, 6.0)]).unwrap();
        assert_eq!(collapsed.len(), 2);
        assert_eq!(collapsed[0].edge, EdgeId(0));
        assert_eq!(collapsed[0].old, 4.0);
        assert_eq!(collapsed[0].new, 6.0);
        assert_eq!(collapsed[1].new, 9.0);
        // Out-of-range and non-positive are typed errors.
        assert!(collapse_changes(&g, &[(7, 1.0)]).is_err());
        assert!(collapse_changes(&g, &[(0, 0.0)]).is_err());
        assert!(collapse_changes(&g, &[(0, f64::NAN)]).is_err());
    }
}
