//! A minimal blocking client for the `flowd` wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues one request at a time
//! (the protocol is strictly request/reply per connection). Concurrency
//! comes from opening more connections — which is also what feeds the
//! server's query coalescing.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::json::{parse, JsonError, Value};
use crate::protocol::ErrorCode;
use crate::wire::{read_frame, write_frame, WireError};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Connection or framing failure.
    Wire(WireError),
    /// The server sent a frame that is not valid JSON.
    Json(JsonError),
    /// The server closed the connection instead of replying.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "client wire error: {e}"),
            ClientError::Json(e) => write!(f, "client json error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection mid-request"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<JsonError> for ClientError {
    fn from(e: JsonError) -> Self {
        ClientError::Json(e)
    }
}

/// A blocking `flowd` connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Sends one request document and waits for the reply document.
    pub fn call(&mut self, request: &Value) -> Result<Value, ClientError> {
        let text = request.to_json()?;
        write_frame(&mut self.stream, &text)?;
        match read_frame(&mut self.stream)? {
            Some(reply) => Ok(parse(&reply)?),
            None => Err(ClientError::Closed),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![("op", Value::Str("ping".into()))]))
    }

    /// Loads a graph; on success the reply's `"graph"` field is the session
    /// fingerprint to pass to [`Self::max_flow`] / [`Self::route`] /
    /// [`Self::update`]. `config` is an optional solver-config object in
    /// `config_io` field names (e.g. `{"epsilon": 0.5}`).
    pub fn load_graph(
        &mut self,
        nodes: u64,
        edges: &[(u32, u32, f64)],
        config: Option<Value>,
    ) -> Result<Value, ClientError> {
        let edge_values = edges
            .iter()
            .map(|&(u, v, cap)| {
                Value::Arr(vec![
                    Value::index(u64::from(u)),
                    Value::index(u64::from(v)),
                    Value::Num(cap),
                ])
            })
            .collect();
        let mut fields = vec![
            ("op", Value::Str("load_graph".into())),
            ("nodes", Value::index(nodes)),
            ("edges", Value::Arr(edge_values)),
        ];
        if let Some(c) = config {
            fields.push(("config", c));
        }
        self.call(&Value::obj(fields))
    }

    /// `(1+ε)` max flow between `s` and `t` on a loaded graph.
    pub fn max_flow(&mut self, graph: &str, s: u32, t: u32) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![
            ("op", Value::Str("max_flow".into())),
            ("graph", Value::Str(graph.into())),
            ("s", Value::index(u64::from(s))),
            ("t", Value::index(u64::from(t))),
        ]))
    }

    /// Routes a demand vector (one entry per node, summing to ~0).
    pub fn route(&mut self, graph: &str, demand: &[f64]) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![
            ("op", Value::Str("route".into())),
            ("graph", Value::Str(graph.into())),
            (
                "demand",
                Value::Arr(demand.iter().map(|&x| Value::Num(x)).collect()),
            ),
        ]))
    }

    /// Changes edge capacities in place; the reply reports the new graph
    /// `version` and whether the refresh ran incrementally.
    pub fn update(&mut self, graph: &str, changes: &[(u32, f64)]) -> Result<Value, ClientError> {
        let change_values = changes
            .iter()
            .map(|&(e, cap)| Value::Arr(vec![Value::index(u64::from(e)), Value::Num(cap)]))
            .collect();
        self.call(&Value::obj(vec![
            ("op", Value::Str("update".into())),
            ("graph", Value::Str(graph.into())),
            ("changes", Value::Arr(change_values)),
        ]))
    }

    /// Server-wide serving counters.
    pub fn stats(&mut self) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![("op", Value::Str("stats".into()))]))
    }

    /// Asks the daemon to stop.
    pub fn shutdown(&mut self) -> Result<Value, ClientError> {
        self.call(&Value::obj(vec![("op", Value::Str("shutdown".into()))]))
    }
}

/// Convenience: whether a reply is an error with the given code.
pub fn is_error(reply: &Value, code: ErrorCode) -> bool {
    reply.get("ok").and_then(Value::as_bool) == Some(false)
        && reply.get("code").and_then(Value::as_str) == Some(code.as_str())
}
