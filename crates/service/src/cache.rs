//! Session-cache keys and the LRU policy of the daemon.
//!
//! A prepared session is expensive (ensemble of Räcke trees, spanning tree
//! and scratch); `flowd` keys each one by a **fingerprint** of exactly the
//! inputs that determine the prepared bytes: node count, edge list with
//! capacity bit patterns, and the canonical JSON of the solver config.
//! Clients that resend the same graph get the cached session back; the
//! cache holds at most `capacity` sessions and evicts the least recently
//! *used* one (queries and updates both count as use).

/// 64-bit FNV-1a — tiny, dependency-free, and stable across platforms. The
/// fingerprint is a cache key, not a security boundary; collisions merely
/// serve a query against the colliding graph, and the offset/prime constants
/// are the canonical ones so the key is reproducible by third-party clients.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// FNV-1a offset basis.
    pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a prime.
    pub const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh hash.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Fingerprints a `load_graph` request: node count, every `(u, v)` edge with
/// the exact capacity bit pattern, and the config JSON (empty string for the
/// server default). Two requests collide only if they would prepare
/// byte-identical sessions (up to 64-bit hash collisions).
pub fn graph_fingerprint(nodes: u64, edges: &[(u32, u32, f64)], config_json: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(nodes);
    h.write_u64(edges.len() as u64);
    for &(u, v, cap) in edges {
        h.write_u64(u64::from(u));
        h.write_u64(u64::from(v));
        h.write_u64(cap.to_bits());
    }
    h.write(config_json.as_bytes());
    h.finish()
}

/// A fixed-capacity least-recently-used map from fingerprint to session
/// handle. Linear scans are fine: the cache holds a handful of *prepared
/// sessions* (each hundreds of kilobytes to gigabytes), so `capacity` is
/// single- to low-double-digit and the scan is noise next to one gradient
/// iteration.
#[derive(Debug)]
pub struct Lru<V> {
    capacity: usize,
    /// Most recently used last.
    entries: Vec<(u64, V)>,
}

impl<V> Lru<V> {
    /// An empty cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Lru {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a fingerprint and marks it most recently used.
    pub fn get(&mut self, key: u64) -> Option<&mut V> {
        let i = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(i);
        self.entries.push(entry);
        Some(&mut self.entries.last_mut().expect("just pushed").1)
    }

    /// Looks up a fingerprint without touching recency.
    pub fn peek(&self, key: u64) -> Option<&V> {
        self.entries.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Inserts (or replaces) an entry as most recently used, returning the
    /// evicted `(fingerprint, value)` if the cache was full — the caller
    /// owns tearing the evicted session down.
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        let replaced = self
            .entries
            .iter()
            .position(|(k, _)| *k == key)
            .map(|i| self.entries.remove(i));
        let evicted = match replaced {
            Some(old) => Some(old),
            None if self.entries.len() == self.capacity => Some(self.entries.remove(0)),
            None => None,
        };
        self.entries.push((key, value));
        evicted
    }

    /// Drains every entry (shutdown path).
    pub fn drain(&mut self) -> Vec<(u64, V)> {
        std::mem::take(&mut self.entries)
    }

    /// Fingerprints currently cached, least recently used first.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|(k, _)| *k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_separates_graphs_capacities_and_configs() {
        let edges = vec![(0u32, 1u32, 1.0f64), (1, 2, 2.0)];
        let base = graph_fingerprint(3, &edges, "");
        // Stable across calls.
        assert_eq!(base, graph_fingerprint(3, &edges, ""));
        // Node count, edge endpoints, capacity bits and config all matter.
        assert_ne!(base, graph_fingerprint(4, &edges, ""));
        assert_ne!(base, graph_fingerprint(3, &[(0, 1, 1.0), (1, 2, 2.5)], ""));
        assert_ne!(base, graph_fingerprint(3, &[(0, 2, 1.0), (1, 2, 2.0)], ""));
        assert_ne!(base, graph_fingerprint(3, &edges, r#"{"epsilon":0.5}"#));
        // -0.0 and 0.0 have different bit patterns, so they are different
        // keys (matching the bitwise session-equality contract).
        assert_ne!(
            graph_fingerprint(3, &[(0, 1, 0.0), (1, 2, 2.0)], ""),
            graph_fingerprint(3, &[(0, 1, -0.0), (1, 2, 2.0)], "")
        );
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Canonical FNV-1a test vectors.
        let mut h = Fnv1a::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = Lru::new(2);
        assert!(lru.insert(1, "a").is_none());
        assert!(lru.insert(2, "b").is_none());
        // Touch 1 so 2 becomes the eviction victim.
        assert_eq!(lru.get(1), Some(&mut "a"));
        let evicted = lru.insert(3, "c");
        assert_eq!(evicted, Some((2, "b")));
        assert_eq!(lru.len(), 2);
        assert!(lru.peek(2).is_none());
        assert!(lru.peek(1).is_some());
        assert!(lru.peek(3).is_some());
    }

    #[test]
    fn lru_replacing_a_live_key_returns_the_old_value_without_eviction() {
        let mut lru = Lru::new(2);
        lru.insert(1, "a");
        lru.insert(2, "b");
        let old = lru.insert(1, "a2");
        assert_eq!(old, Some((1, "a")));
        assert_eq!(lru.len(), 2, "replacement must not evict the other entry");
        assert_eq!(lru.peek(2), Some(&"b"));
    }

    #[test]
    fn lru_capacity_floor_is_one_and_drain_empties() {
        let mut lru = Lru::new(0);
        assert!(lru.insert(1, "a").is_none());
        assert_eq!(lru.insert(2, "b"), Some((1, "a")));
        let drained = lru.drain();
        assert_eq!(drained, vec![(2, "b")]);
        assert!(lru.is_empty());
    }
}
