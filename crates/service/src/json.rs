//! A hand-rolled JSON value codec for the wire protocol — the dynamic
//! counterpart of the flat parser in `maxflow`'s `config_io` (same
//! recursive-descent style, zero dependencies).
//!
//! Scope: full JSON values (objects, arrays, strings with escapes, numbers,
//! booleans, null), bounded nesting depth, strict trailing-garbage rejection.
//! Floats are emitted with Rust's shortest-round-trip `{:?}` formatting, so
//! every finite `f64` survives a serialize → parse round trip bit-exactly —
//! the property the determinism-sensitive protocol tests pin.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`]: deep enough for any frame the
/// protocol emits (≤ 4 levels), shallow enough that hostile input cannot
/// overflow the parser's stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; every node index and
    /// counter the protocol uses fits `f64` exactly, being below 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is preserved from the document; duplicate keys
    /// are rejected at parse time.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value; `None` for absent keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer below 2⁵³ (the exact-in-`f64`
    /// range), if it is one — the shape of every index and count on the wire.
    pub fn as_index(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9_007_199_254_740_992.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Serializes the value to a JSON document.
    ///
    /// Non-finite numbers have no JSON representation; they are emitted as
    /// `null` **never** — constructing a `Value::Num` from a non-finite float
    /// is a caller bug, caught here by returning an error (the same contract
    /// `config_io::to_json` adopted).
    pub fn to_json(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    fn write(&self, out: &mut String) -> Result<(), JsonError> {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(x) => {
                if !x.is_finite() {
                    return Err(JsonError::at(0, "non-finite number has no JSON form"));
                }
                // Exact small integers print in integer form (strict
                // integer-field parsers like config_io's reject "3.0");
                // everything else uses `{:?}`, Rust's shortest
                // representation that parses back to the same bits. `-0.0`
                // stays on the float path to keep its sign bit.
                if x.fract() == 0.0
                    && x.abs() <= 9_007_199_254_740_992.0
                    && !(*x == 0.0 && x.is_sign_negative())
                {
                    let _ = write!(out, "{}", *x as i64);
                } else {
                    let _ = write!(out, "{x:?}");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out)?;
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }
}

/// Convenience constructors for protocol emission.
impl Value {
    /// An object from key–value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number from an exact-in-`f64` unsigned integer.
    pub fn index(x: u64) -> Value {
        debug_assert!(x <= 9_007_199_254_740_992, "index exceeds exact f64 range");
        Value::Num(x as f64)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse or emission error with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the document.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (one value, optionally surrounded by
/// whitespace; anything after it is an error).
pub fn parse(doc: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: doc.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::at(p.pos, "trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(self.pos, format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::at(self.pos, format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at(self.pos, "nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(JsonError::at(self.pos, "unexpected character")),
            None => Err(JsonError::at(self.pos, "unexpected end of document")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Value)> = Vec::new();
        let mut seen: BTreeMap<String, ()> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key_pos = self.pos;
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(JsonError::at(key_pos, format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(xs));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::at(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.peek() != Some(b'\\') {
                                    return Err(JsonError::at(self.pos, "lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(JsonError::at(self.pos, "invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else if (0xdc00..0xe000).contains(&code) {
                                None // lone low surrogate
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => s.push(c),
                                None => {
                                    return Err(JsonError::at(self.pos, "invalid unicode escape"))
                                }
                            }
                        }
                        _ => return Err(JsonError::at(self.pos - 1, "unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(JsonError::at(self.pos, "unescaped control character"))
                }
                Some(_) => {
                    // Advance one UTF-8 character (the document is &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.bytes[start..end]).expect("valid utf8"));
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| JsonError::at(self.pos, "expected 4 hex digits"))?;
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one or more digits, no leading zeros before another
        // digit (strict JSON grammar).
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(JsonError::at(self.pos, "leading zero"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(JsonError::at(self.pos, "expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(self.pos, "expected fraction digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(JsonError::at(self.pos, "expected exponent digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let x: f64 = text
            .parse()
            .map_err(|_| JsonError::at(start, "unparseable number"))?;
        if !x.is_finite() {
            return Err(JsonError::at(start, "number overflows f64"));
        }
        Ok(Value::Num(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let doc = r#"{"op":"max_flow","s":3,"t":14,"nested":{"a":[1,2.5,-3e-2],"b":null,"c":true,"d":"x\"y\\z\n"}}"#;
        let v = parse(doc).unwrap();
        let emitted = v.to_json().unwrap();
        assert_eq!(parse(&emitted).unwrap(), v);
        assert_eq!(v.get("op").unwrap().as_str(), Some("max_flow"));
        assert_eq!(v.get("s").unwrap().as_index(), Some(3));
        assert_eq!(
            v.get("nested").unwrap().get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-3e-2)
        );
    }

    #[test]
    fn every_finite_f64_round_trips_bitwise() {
        for x in [
            0.0,
            -0.0,
            1.0,
            1.5,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
            2.2250738585072014e-308,
            0.1 + 0.2,
            std::f64::consts::PI,
            1e300,
            -7.297e-22,
        ] {
            let doc = Value::Num(x).to_json().unwrap();
            let back = parse(&doc).unwrap().as_f64().unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} via {doc}");
        }
    }

    #[test]
    fn non_finite_emission_is_an_error() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(Value::Num(x).to_json().is_err());
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\":1 \"b\":2}",
            "01",
            "1.",
            "1e",
            "\"\\q\"",
            "\"\\ud800\"",
            "nul",
            "truex",
            "{\"a\":1}{",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "\u{1}",
            "[\"unterminated]",
            "1e400",
        ] {
            assert!(parse(bad).is_err(), "document {bad:?} must be rejected");
        }
    }

    #[test]
    fn deep_nesting_is_bounded_not_a_stack_overflow() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn unicode_and_surrogate_pairs() {
        let v = parse(r#""\u00e9\ud83d\ude00 ünïcode""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀 ünïcode"));
        let emitted = v.to_json().unwrap();
        assert_eq!(parse(&emitted).unwrap(), v);
    }
}
