//! `flowd` — flow as a service.
//!
//! A long-lived daemon over the prepare-once / query-many sessions of the
//! `maxflow` crate: clients load a graph once (the server keeps the
//! prepared congestion approximator, spanning tree and scratch in an LRU
//! session cache keyed by graph fingerprint) and then stream cheap
//! queries — `(1+ε)` max-flow values, demand routings, and in-place
//! capacity updates — over a std-only TCP wire protocol.
//!
//! The wire format is deliberately boring: each frame is a 4-byte
//! big-endian length prefix followed by one UTF-8 JSON document (see
//! [`wire`] and [`protocol`]). No external dependencies, no registry —
//! a client fits in a page of any language.
//!
//! Concurrent queries against the same graph are **coalesced**: each cached
//! graph has one worker thread, and whatever queued up while the previous
//! answer was computed is served as one blocked-gradient batch
//! ([`maxflow::PreparedMaxFlow::par_max_flow_batch`]), whose answers are
//! byte-identical to serving each query alone. Capacity updates are queue
//! barriers: every answer is computed against exactly one graph version
//! (reported back as `"version"`), never a torn mix.
//!
//! # Quickstart
//!
//! ```
//! use service::client::Client;
//! use service::json::Value;
//! use service::server::{start, ServerOptions};
//!
//! // Bind an ephemeral port; production uses a fixed --addr.
//! let mut server = start("127.0.0.1:0", ServerOptions::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! // Load a 4-node path graph with a cheap solver config.
//! let edges = [(0, 1, 4.0), (1, 2, 2.0), (2, 3, 4.0)];
//! let config = Value::obj(vec![("epsilon", Value::Num(0.5))]);
//! let loaded = client.load_graph(4, &edges, Some(config)).unwrap();
//! let graph = loaded.get("graph").and_then(Value::as_str).unwrap().to_string();
//!
//! // Query it: the bottleneck capacity 2.0 is inside the certified bracket.
//! let answer = client.max_flow(&graph, 0, 3).unwrap();
//! let value = answer.get("value").and_then(Value::as_f64).unwrap();
//! let upper = answer.get("upper_bound").and_then(Value::as_f64).unwrap();
//! assert!(value <= 2.0 + 1e-9 && 2.0 <= upper + 1e-9);
//!
//! // Raise the bottleneck in place; the session refreshes incrementally.
//! let updated = client.update(&graph, &[(1, 8.0)]).unwrap();
//! assert_eq!(updated.get("ok").and_then(Value::as_bool), Some(true));
//! let answer = client.max_flow(&graph, 0, 3).unwrap();
//! assert!(answer.get("upper_bound").and_then(Value::as_f64).unwrap() >= 4.0 - 1e-9);
//!
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod json;
pub mod protocol;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError};
pub use server::{start, ServerHandle, ServerOptions};
