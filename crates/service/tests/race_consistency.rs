//! The never-torn serving contract, under real concurrency: while clients
//! hammer a graph with queries and an update lands mid-stream, every answer
//! must be **bitwise** either the pre-update answer or the post-update
//! answer — keyed by the `version` field the server reports — and never a
//! mix of old and new capacities.
//!
//! The oracle is exact because the whole pipeline is deterministic: the
//! pre-update reference is a session built offline on the old graph with
//! the same config, and the post-update reference replays the server's own
//! incremental path ([`PreparedParts::refresh_after_capacity_update`]) on a
//! copy. Queries are stateless with warm starts off and batched answers are
//! pinned byte-identical to sequential ones, so any interleaving the server
//! picks must reproduce one of the two references bit for bit.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use flowgraph::{gen, Demand, Graph, NodeId};
use maxflow::{MaxFlowConfig, PreparedMaxFlow, PreparedParts};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use service::client::Client;
use service::json::{parse, Value};
use service::protocol::collapse_changes;
use service::server::{start, ServerOptions};

struct References {
    old_value: u64,
    old_upper: u64,
    new_value: u64,
    new_upper: u64,
    old_congestion: u64,
    new_congestion: u64,
}

/// Replays the server's exact serving paths offline: build on the old
/// graph, answer; apply + refresh incrementally, answer again.
fn compute_references(
    graph: &Graph,
    config: &MaxFlowConfig,
    s: NodeId,
    t: NodeId,
    demand: &Demand,
    changes: &[(u32, f64)],
) -> References {
    let parts = PreparedParts::build(graph, config).unwrap();
    let mut session = PreparedMaxFlow::from_parts(graph, parts).unwrap();
    let old = session.max_flow(s, t).unwrap();
    let old_route = session.route(demand).unwrap();

    let mut updated = graph.clone();
    let collapsed = collapse_changes(&updated, changes).unwrap();
    for c in &collapsed {
        updated.set_capacity(c.edge, c.new).unwrap();
    }
    let mut parts = session.into_parts();
    parts
        .refresh_after_capacity_update(&updated, &collapsed)
        .unwrap();
    let mut session = PreparedMaxFlow::from_parts(&updated, parts).unwrap();
    let new = session.max_flow(s, t).unwrap();
    let new_route = session.route(demand).unwrap();

    References {
        old_value: old.value.to_bits(),
        old_upper: old.upper_bound.to_bits(),
        new_value: new.value.to_bits(),
        new_upper: new.upper_bound.to_bits(),
        old_congestion: old_route.congestion.to_bits(),
        new_congestion: new_route.congestion.to_bits(),
    }
}

#[derive(Debug)]
enum Observation {
    MaxFlow {
        version: u64,
        value: u64,
        upper: u64,
    },
    Route {
        version: u64,
        congestion: u64,
    },
}

fn fast_config() -> MaxFlowConfig {
    MaxFlowConfig {
        epsilon: 0.5,
        racke: capprox::RackeConfig {
            num_trees: Some(3),
            ..Default::default()
        },
        phases: Some(2),
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Three client threads stream queries while the main thread fires one
    /// capacity update; every served answer must carry a version and be
    /// bitwise equal to that version's offline reference.
    #[test]
    fn concurrent_queries_see_old_or_new_answers_never_torn(seed in 0u64..1000) {
        let n = 8 + (seed % 5) as u32;
        let graph = gen::path(n as usize, 4.0);
        let config = fast_config();
        let s = NodeId(0);
        let t = NodeId(n - 1);
        // One mid-path capacity drop: certifiably changes the bottleneck.
        let changed_edge = n / 2;
        let changes = vec![(changed_edge, 1.0 + (seed % 3) as f64 * 0.5)];
        let mut demand = Demand::zeros(n as usize);
        demand.set(s, -2.0);
        demand.set(t, 2.0);
        let refs = compute_references(&graph, &config, s, t, &demand, &changes);

        let mut server = start("127.0.0.1:0", ServerOptions::default()).unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        let config_value = parse(&config.to_json().unwrap()).unwrap();
        let edges: Vec<(u32, u32, f64)> = graph
            .edge_ids()
            .map(|e| {
                let edge = graph.edge(e);
                (edge.tail.0, edge.head.0, edge.capacity)
            })
            .collect();
        let loaded = client.load_graph(u64::from(n), &edges, Some(config_value)).unwrap();
        prop_assert_eq!(loaded.get("ok").and_then(Value::as_bool), Some(true));
        let fp = Arc::new(
            loaded.get("graph").and_then(Value::as_str).unwrap().to_string(),
        );

        let demand_values: Arc<Vec<f64>> = Arc::new(demand.values().to_vec());
        let mut workers = Vec::new();
        for worker in 0..3u32 {
            let fp = Arc::clone(&fp);
            let demand_values = Arc::clone(&demand_values);
            workers.push(thread::spawn(move || -> Result<Vec<Observation>, String> {
                let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                let mut seen = Vec::new();
                for i in 0..12 {
                    let reply = if (worker + i) % 3 == 0 {
                        let reply = client
                            .route(&fp, &demand_values)
                            .map_err(|e| e.to_string())?;
                        if reply.get("ok").and_then(Value::as_bool) != Some(true) {
                            return Err(format!("route failed: {reply:?}"));
                        }
                        Observation::Route {
                            version: reply.get("version").and_then(Value::as_index).unwrap(),
                            congestion: reply
                                .get("congestion")
                                .and_then(Value::as_f64)
                                .unwrap()
                                .to_bits(),
                        }
                    } else {
                        let reply = client
                            .max_flow(&fp, 0, n - 1)
                            .map_err(|e| e.to_string())?;
                        if reply.get("ok").and_then(Value::as_bool) != Some(true) {
                            return Err(format!("max_flow failed: {reply:?}"));
                        }
                        Observation::MaxFlow {
                            version: reply.get("version").and_then(Value::as_index).unwrap(),
                            value: reply.get("value").and_then(Value::as_f64).unwrap().to_bits(),
                            upper: reply
                                .get("upper_bound")
                                .and_then(Value::as_f64)
                                .unwrap()
                                .to_bits(),
                        }
                    };
                    seen.push(reply);
                }
                Ok(seen)
            }));
        }

        // Land the update in the middle of the query storm.
        thread::sleep(Duration::from_millis(5));
        let updated = client.update(&fp, &changes).unwrap();
        prop_assert_eq!(
            updated.get("ok").and_then(Value::as_bool),
            Some(true),
            "{:?}",
            &updated
        );
        // One edge changed: the server must have taken the incremental path.
        prop_assert_eq!(updated.get("incremental").and_then(Value::as_bool), Some(true));
        prop_assert_eq!(updated.get("version").and_then(Value::as_index), Some(1));

        let mut observations = Vec::new();
        for w in workers {
            let seen = w.join().expect("query thread panicked");
            match seen {
                Ok(seen) => observations.extend(seen),
                Err(e) => return Err(TestCaseError::fail(format!("query thread: {e}"))),
            }
        }
        prop_assert_eq!(observations.len(), 36);

        // Every answer is bitwise the reference of the version it names.
        for obs in &observations {
            match *obs {
                Observation::MaxFlow { version, value, upper } => match version {
                    0 => {
                        prop_assert_eq!(value, refs.old_value, "torn old max_flow: {:?}", obs);
                        prop_assert_eq!(upper, refs.old_upper);
                    }
                    1 => {
                        prop_assert_eq!(value, refs.new_value, "torn new max_flow: {:?}", obs);
                        prop_assert_eq!(upper, refs.new_upper);
                    }
                    v => return Err(TestCaseError::fail(format!("impossible version {v}"))),
                },
                Observation::Route { version, congestion } => match version {
                    0 => prop_assert_eq!(congestion, refs.old_congestion, "torn old route: {:?}", obs),
                    1 => prop_assert_eq!(congestion, refs.new_congestion, "torn new route: {:?}", obs),
                    v => return Err(TestCaseError::fail(format!("impossible version {v}"))),
                },
            }
        }
        // The two references genuinely differ (the update moved the
        // bottleneck), so the check above is not vacuous.
        prop_assert_ne!(refs.old_value, refs.new_value);

        // After the dust settles every new answer is the new reference.
        let reply = client.max_flow(&fp, 0, n - 1).unwrap();
        prop_assert_eq!(reply.get("version").and_then(Value::as_index), Some(1));
        prop_assert_eq!(
            reply.get("value").and_then(Value::as_f64).unwrap().to_bits(),
            refs.new_value
        );
        server.shutdown();
    }
}
