//! End-to-end tests of the `flowd` daemon over real sockets: protocol
//! behavior, session-cache eviction, and the incremental-update /
//! full-rebuild split.

use flowgraph::NodeId;
use maxflow::{MaxFlowConfig, PreparedMaxFlow};
use service::client::{is_error, Client};
use service::json::{parse, Value};
use service::protocol::ErrorCode;
use service::server::{start, ServerOptions};

/// A cheap solver config so every query costs microseconds, as a `Value`
/// for the wire and a `MaxFlowConfig` for in-process references.
fn fast_config() -> (Value, MaxFlowConfig) {
    let config = MaxFlowConfig {
        epsilon: 0.5,
        racke: capprox::RackeConfig {
            num_trees: Some(3),
            ..Default::default()
        },
        phases: Some(2),
        ..Default::default()
    };
    let value = parse(&config.to_json().unwrap()).unwrap();
    (value, config)
}

fn path_edges(n: u32, cap: f64) -> Vec<(u32, u32, f64)> {
    (0..n - 1).map(|i| (i, i + 1, cap)).collect()
}

fn f(reply: &Value, key: &str) -> f64 {
    reply
        .get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("{key} missing in {reply:?}"))
}

fn load(client: &mut Client, nodes: u64, edges: &[(u32, u32, f64)], config: &Value) -> String {
    let reply = client
        .load_graph(nodes, edges, Some(config.clone()))
        .unwrap();
    assert_eq!(
        reply.get("ok").and_then(Value::as_bool),
        Some(true),
        "{reply:?}"
    );
    reply
        .get("graph")
        .and_then(Value::as_str)
        .unwrap()
        .to_string()
}

#[test]
fn ping_stats_and_malformed_frames() {
    let mut server = start("127.0.0.1:0", ServerOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let pong = client.ping().unwrap();
    assert_eq!(pong.get("pong").and_then(Value::as_bool), Some(true));

    // Malformed JSON and non-object requests get typed errors over a raw
    // socket; the connection and the server both survive each of them.
    {
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        for bad in [r#"{"op""#, r#"[1,2,3]"#, "null", r#"{"s":1}"#] {
            service::wire::write_frame(&mut raw, bad).unwrap();
            let reply = service::wire::read_frame(&mut raw).unwrap().unwrap();
            let reply = parse(&reply).unwrap();
            assert!(
                is_error(&reply, ErrorCode::InvalidRequest),
                "{bad}: {reply:?}"
            );
        }
    }
    let reply = client
        .call(&Value::obj(vec![("op", Value::Str("warp".into()))]))
        .unwrap();
    assert!(is_error(&reply, ErrorCode::InvalidRequest), "{reply:?}");

    let stats = client.stats().unwrap();
    assert_eq!(stats.get("graphs").and_then(Value::as_index), Some(0));
    assert!(f(&stats, "invalid_requests") >= 5.0);
    server.shutdown();
}

#[test]
fn load_query_update_round_trip_with_certified_brackets() {
    let (config_value, config) = fast_config();
    let mut server = start("127.0.0.1:0", ServerOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // 6-node path, bottleneck 2.0 at edge 2.
    let mut edges = path_edges(6, 4.0);
    edges[2].2 = 2.0;
    let graph = load(&mut client, 6, &edges, &config_value);

    // Reloading the same graph hits the cache.
    let again = client
        .load_graph(6, &edges, Some(config_value.clone()))
        .unwrap();
    assert_eq!(again.get("cached").and_then(Value::as_bool), Some(true));
    assert_eq!(again.get("graph").and_then(Value::as_str).unwrap(), graph);

    // The served answer is bitwise the in-process session's answer.
    let g = {
        let mut g = flowgraph::Graph::with_nodes(6);
        for &(u, v, c) in &edges {
            g.add_edge(NodeId(u), NodeId(v), c).unwrap();
        }
        g
    };
    let mut reference = PreparedMaxFlow::prepare(&g, &config).unwrap();
    let expected = reference.max_flow(NodeId(0), NodeId(5)).unwrap();
    let reply = client.max_flow(&graph, 0, 5).unwrap();
    assert_eq!(f(&reply, "value").to_bits(), expected.value.to_bits());
    assert_eq!(
        f(&reply, "upper_bound").to_bits(),
        expected.upper_bound.to_bits()
    );
    assert_eq!(reply.get("version").and_then(Value::as_index), Some(0));
    // The bracket certifies the 2.0 bottleneck.
    assert!(f(&reply, "value") <= 2.0 + 1e-9);
    assert!(f(&reply, "upper_bound") >= 2.0 - 1e-9);

    // Routing one unit end-to-end congests the bottleneck by ~1/2.
    let mut demand = vec![0.0; 6];
    demand[0] = -1.0;
    demand[5] = 1.0;
    let routed = client.route(&graph, &demand).unwrap();
    assert_eq!(
        routed.get("ok").and_then(Value::as_bool),
        Some(true),
        "{routed:?}"
    );
    assert!(f(&routed, "congestion") >= 0.5 - 1e-6, "{routed:?}");

    // A small update takes the incremental path and bumps the version.
    let updated = client.update(&graph, &[(2, 8.0)]).unwrap();
    assert_eq!(
        updated.get("ok").and_then(Value::as_bool),
        Some(true),
        "{updated:?}"
    );
    assert_eq!(
        updated.get("incremental").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(updated.get("version").and_then(Value::as_index), Some(1));
    assert!(f(&updated, "trees_touched") >= 1.0);
    assert!(f(&updated, "slots_patched") >= 1.0);

    // The new bottleneck is 4.0 and answers carry the new version.
    let reply = client.max_flow(&graph, 0, 5).unwrap();
    assert_eq!(reply.get("version").and_then(Value::as_index), Some(1));
    assert!(f(&reply, "value") <= 4.0 + 1e-9);
    assert!(f(&reply, "upper_bound") >= 4.0 - 1e-9);

    // include_flow returns one value per edge.
    let reply = client
        .call(&Value::obj(vec![
            ("op", Value::Str("max_flow".into())),
            ("graph", Value::Str(graph.clone())),
            ("s", Value::index(0)),
            ("t", Value::index(5)),
            ("include_flow", Value::Bool(true)),
        ]))
        .unwrap();
    let flow = reply.get("flow").and_then(Value::as_arr).unwrap();
    assert_eq!(flow.len(), edges.len());

    // Bad terminals are per-query typed errors, not connection killers.
    let reply = client.max_flow(&graph, 3, 3).unwrap();
    assert!(is_error(&reply, ErrorCode::GraphError), "{reply:?}");
    let reply = client.max_flow(&graph, 0, 99).unwrap();
    assert!(is_error(&reply, ErrorCode::GraphError), "{reply:?}");
    // ... and the session still answers afterwards.
    let reply = client.max_flow(&graph, 0, 5).unwrap();
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));

    // Per-entry counters made it into stats.
    let stats = client.stats().unwrap();
    let entries = stats.get("entries").and_then(Value::as_arr).unwrap();
    assert_eq!(entries.len(), 1);
    assert!(f(&entries[0], "queries") >= 4.0);
    assert_eq!(entries[0].get("updates").and_then(Value::as_index), Some(1));
    assert_eq!(
        entries[0]
            .get("incremental_updates")
            .and_then(Value::as_index),
        Some(1)
    );
    assert_eq!(
        entries[0].get("full_rebuilds").and_then(Value::as_index),
        Some(0)
    );
    server.shutdown();
}

#[test]
fn bulk_updates_fall_back_to_a_full_rebuild() {
    let (config_value, _) = fast_config();
    let mut server = start("127.0.0.1:0", ServerOptions::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // 40-node path (39 edges): the incremental bound is max(16, 39/8) = 16,
    // so changing 20 edges must rebuild.
    let edges = path_edges(40, 4.0);
    let graph = load(&mut client, 40, &edges, &config_value);
    let changes: Vec<(u32, f64)> = (0..20).map(|i| (i, 3.0)).collect();
    let updated = client.update(&graph, &changes).unwrap();
    assert_eq!(
        updated.get("ok").and_then(Value::as_bool),
        Some(true),
        "{updated:?}"
    );
    assert_eq!(
        updated.get("incremental").and_then(Value::as_bool),
        Some(false)
    );
    assert_eq!(updated.get("version").and_then(Value::as_index), Some(1));

    // A small follow-up update is incremental again (the rebuilt parts are
    // refreshable), and queries keep certifying the right bottleneck.
    let updated = client.update(&graph, &[(5, 0.5)]).unwrap();
    assert_eq!(
        updated.get("incremental").and_then(Value::as_bool),
        Some(true),
        "{updated:?}"
    );
    let reply = client.max_flow(&graph, 0, 39).unwrap();
    assert!(f(&reply, "value") <= 0.5 + 1e-9);
    assert!(f(&reply, "upper_bound") >= 0.5 - 1e-9);
    assert_eq!(reply.get("version").and_then(Value::as_index), Some(2));

    let stats = client.stats().unwrap();
    let entries = stats.get("entries").and_then(Value::as_arr).unwrap();
    assert_eq!(
        entries[0].get("full_rebuilds").and_then(Value::as_index),
        Some(1)
    );
    assert_eq!(
        entries[0]
            .get("incremental_updates")
            .and_then(Value::as_index),
        Some(1)
    );
    server.shutdown();
}

#[test]
fn lru_eviction_forgets_graphs_and_reload_revives_them() {
    let (config_value, _) = fast_config();
    let options = ServerOptions {
        cache_capacity: 2,
        ..ServerOptions::default()
    };
    let mut server = start("127.0.0.1:0", options).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Three distinct graphs through a capacity-2 cache.
    let a = load(&mut client, 5, &path_edges(5, 1.0), &config_value);
    let b = load(&mut client, 6, &path_edges(6, 1.0), &config_value);
    let c = load(&mut client, 7, &path_edges(7, 1.0), &config_value);
    assert_ne!(a, b);
    assert_ne!(b, c);

    // A was least recently used and is gone; B and C still answer.
    let reply = client.max_flow(&a, 0, 4).unwrap();
    assert!(is_error(&reply, ErrorCode::UnknownGraph), "{reply:?}");
    assert_eq!(
        client
            .max_flow(&b, 0, 5)
            .unwrap()
            .get("ok")
            .and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        client
            .max_flow(&c, 0, 6)
            .unwrap()
            .get("ok")
            .and_then(Value::as_bool),
        Some(true)
    );
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("graphs").and_then(Value::as_index), Some(2));
    assert_eq!(stats.get("evictions").and_then(Value::as_index), Some(1));

    // Touching B then loading a fourth graph evicts C, not B.
    client.max_flow(&b, 0, 5).unwrap();
    let d = load(&mut client, 8, &path_edges(8, 1.0), &config_value);
    let reply = client.max_flow(&c, 0, 6).unwrap();
    assert!(is_error(&reply, ErrorCode::UnknownGraph), "{reply:?}");
    assert_eq!(
        client
            .max_flow(&b, 0, 5)
            .unwrap()
            .get("ok")
            .and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(
        client
            .max_flow(&d, 0, 7)
            .unwrap()
            .get("ok")
            .and_then(Value::as_bool),
        Some(true)
    );

    // Reloading the evicted graph revives it under the same fingerprint,
    // with fresh (version 0) state.
    let a_again = load(&mut client, 5, &path_edges(5, 1.0), &config_value);
    assert_eq!(a, a_again);
    let reply = client.max_flow(&a, 0, 4).unwrap();
    assert_eq!(reply.get("ok").and_then(Value::as_bool), Some(true));
    assert_eq!(reply.get("version").and_then(Value::as_index), Some(0));

    // A fingerprint that was never loaded is unknown, not a crash.
    let reply = client.max_flow("deadbeefdeadbeef", 0, 1).unwrap();
    assert!(is_error(&reply, ErrorCode::UnknownGraph));
    server.shutdown();
}

#[test]
fn wire_shutdown_op_stops_the_daemon() {
    let (config_value, _) = fast_config();
    let mut server = start("127.0.0.1:0", ServerOptions::default()).unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let graph = load(&mut client, 5, &path_edges(5, 1.0), &config_value);
    client.max_flow(&graph, 0, 4).unwrap();

    let reply = client.shutdown().unwrap();
    assert_eq!(reply.get("stopping").and_then(Value::as_bool), Some(true));
    // The accept loop exits on its own — join, don't re-signal.
    server.join();

    // New connections are refused or go unanswered once the listener died.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.ping().is_err(), "server answered after shutdown"),
    }
}
