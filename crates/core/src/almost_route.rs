//! Sherman's `AlmostRoute` gradient descent (paper §9.1, Algorithm 2).
//!
//! Given a demand vector `b` and a congestion approximator `R`, the routine
//! minimizes the smoothed potential
//!
//! ```text
//! φ(f) = smax(C⁻¹ f) + smax(2α · R(b − Bf))
//! ```
//!
//! where `smax(y) = ln Σ_i (e^{y_i} + e^{-y_i})` is the soft-max. The first
//! term penalizes edge congestion, the second penalizes unrouted demand as
//! seen through the cuts of the approximator. Each iteration takes a signed
//! step proportional to the edge capacity, exactly as in Algorithm 2; the
//! result is a flow that approximately routes `b` with near-optimal
//! congestion, leaving a small residual that the caller repairs over a
//! spanning tree (Algorithm 1).

use capprox::{CongestionApproximator, OperatorScratch};
use flowgraph::{Demand, FlowVec, Graph};
use parallel::Parallelism;
use serde::{Deserialize, Serialize};

/// Configuration of the gradient descent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlmostRouteConfig {
    /// Target accuracy ε of the routing step.
    pub epsilon: f64,
    /// The approximation quality α assumed for the congestion approximator.
    /// `None` uses the approximator's provable bound.
    pub alpha: Option<f64>,
    /// Hard cap on the number of gradient iterations.
    pub max_iterations: usize,
    /// Adaptive step-size scaling: grow the step while the potential keeps
    /// decreasing, backtrack (restore the flow and halve the scale) when a
    /// step overshoots. Off by default — the fixed `δ/(1+4α²)` schedule of
    /// Algorithm 2 is byte-for-byte preserved when this is `false`.
    #[serde(default)]
    pub adaptive_steps: bool,
    /// Worker pool for the per-iteration operator evaluations (`R·b`, `Rᵀ·y`
    /// fan per-tree aggregations across threads). Purely a performance knob:
    /// results are byte-identical to sequential for any thread count.
    /// Machine-specific, so never serialized (deserialized configs run
    /// sequentially).
    #[serde(skip, default)]
    pub parallelism: Parallelism,
}

impl Default for AlmostRouteConfig {
    fn default() -> Self {
        AlmostRouteConfig {
            epsilon: 0.5,
            alpha: None,
            max_iterations: 20_000,
            adaptive_steps: false,
            parallelism: Parallelism::sequential(),
        }
    }
}

impl AlmostRouteConfig {
    /// Replaces the target accuracy ε.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Overrides the approximator quality α assumed by the descent
    /// (`None` restores the provable bound).
    #[must_use]
    pub fn with_alpha(mut self, alpha: Option<f64>) -> Self {
        self.alpha = alpha;
        self
    }

    /// Replaces the hard cap on gradient iterations.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Enables or disables adaptive step-size scaling (see
    /// [`AlmostRouteConfig::adaptive_steps`]).
    #[must_use]
    pub fn with_adaptive_steps(mut self, adaptive_steps: bool) -> Self {
        self.adaptive_steps = adaptive_steps;
        self
    }

    /// Replaces the worker pool used for the operator evaluations.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// Reusable buffers for the gradient descent: everything the inner loop
/// needs, sized once per (graph, approximator) pair, so that the steady-state
/// iteration allocates nothing on the heap.
///
/// A [`crate::PreparedMaxFlow`] session owns one of these across queries; the
/// free-function wrappers allocate a fresh one per call.
#[derive(Debug, Clone, Default)]
pub struct AlmostRouteScratch {
    /// `C⁻¹ f`, one entry per edge.
    scaled_flow: Vec<f64>,
    /// Soft-max weights of the congestion term, one entry per edge.
    w1: Vec<f64>,
    /// Residual demand `b − Bf`, one entry per node.
    residual: Demand,
    /// `R (b − Bf)` scaled by 2α, one entry per approximator row; doubles as
    /// the price vector after the weight computation.
    rows: Vec<f64>,
    /// Soft-max weights / prices of the demand term, one entry per row.
    prices: Vec<f64>,
    /// Node potentials `π = Rᵀ prices`.
    potentials: Vec<f64>,
    /// Gradient `∂φ/∂f`, one entry per edge.
    grad: Vec<f64>,
    /// Pre-step snapshot of the flow, used by the adaptive-step backtracking
    /// to undo an overshooting step. Only allocated when adaptive steps are
    /// enabled.
    flow_backup: Vec<f64>,
    /// Node-sized scratch borrowed by the operator evaluations.
    op: OperatorScratch,
}

impl AlmostRouteScratch {
    /// Scratch pre-sized for `g` and `r` (also happens lazily on first use).
    pub fn for_instance(g: &Graph, r: &CongestionApproximator) -> Self {
        let mut scratch = AlmostRouteScratch::default();
        scratch.ensure(g, r);
        scratch
    }

    fn ensure(&mut self, g: &Graph, r: &CongestionApproximator) {
        let (n, m, rows) = (g.num_nodes(), g.num_edges(), r.num_rows());
        fn fit(buf: &mut Vec<f64>, len: usize) {
            if buf.len() != len {
                buf.resize(len, 0.0);
            }
        }
        fit(&mut self.scaled_flow, m);
        fit(&mut self.w1, m);
        fit(&mut self.grad, m);
        fit(&mut self.rows, rows);
        fit(&mut self.prices, rows);
        fit(&mut self.potentials, n);
        if self.residual.len() != n {
            self.residual = Demand::zeros(n);
        }
        self.op.ensure_nodes(n);
    }

    /// `‖R·b‖_∞` evaluated through the scratch buffers — the allocation-free
    /// counterpart of [`CongestionApproximator::congestion_lower_bound`],
    /// used at the phase boundaries of a session query. Deliberately
    /// sequential: phase-boundary norm checks run once per phase, not once
    /// per iteration, so they are off the hot path the parallel operators
    /// accelerate.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the approximator's node count.
    pub fn congestion_lower_bound(&mut self, r: &CongestionApproximator, b: &Demand) -> f64 {
        if self.rows.len() != r.num_rows() {
            self.rows.resize(r.num_rows(), 0.0);
        }
        self.op.ensure_nodes(r.num_nodes());
        r.apply_into(b, &mut self.rows, &mut self.op)
            .expect("demand length mismatch");
        self.rows.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }
}

/// Outcome of one `AlmostRoute` call.
#[derive(Debug, Clone)]
pub struct AlmostRouteResult {
    /// The computed flow (in the *original* demand scale).
    pub flow: FlowVec,
    /// Number of gradient iterations performed.
    pub iterations: usize,
    /// Number of potential-rescaling steps (the `17/16` loop of Algorithm 2).
    pub scaling_steps: usize,
    /// Final value of the potential (in the working scale).
    pub final_potential: f64,
    /// Whether the iteration cap was hit before `δ < ε/4`.
    pub hit_iteration_cap: bool,
}

/// Branch-free `e^x` for `x ≤ 0`, accurate to ~1 ulp, written so the
/// autovectorizer can chew on whole slices of arguments (no libm call, no
/// data-dependent branches).
///
/// Standard Cody–Waite argument reduction `x = n·ln2 + r` with `|r| ≤ ln2/2`,
/// a degree-13 Taylor polynomial for `e^r` (truncation error < 5e-18 on that
/// interval), and a branch-free reconstruction of `2^n` as the product of two
/// half-exponent powers so that results in the subnormal range (down to
/// `x ≈ -745`) underflow gradually instead of needing a slow path. Inputs
/// below the underflow threshold round to `±0` through the same product.
#[inline(always)]
fn exp_nonpos(x: f64) -> f64 {
    const LOG2_E: f64 = std::f64::consts::LOG2_E;
    // The canonical Cody–Waite split of ln 2; the full published digits are
    // kept even where they exceed f64 precision so the pair is recognizably
    // the standard one.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f64 = 6.931_471_803_691_238_16e-1;
    #[allow(clippy::excessive_precision)]
    const LN2_LO: f64 = 1.908_214_929_270_587_70e-10;
    // 1.5·2^52: adding it forces `x·log2(e)` to round to the nearest integer
    // in the low mantissa bits (round-to-nearest-even, same as `round_ties_even`),
    // without the data-dependent branch sequence `f64::round` lowers to.
    const SHIFT: f64 = 6_755_399_441_055_744.0;
    // Everything at or below -746 underflows to zero anyway; clamping keeps
    // the shifted exponent in range branchlessly. (NaN also maps to the
    // threshold — the potential is only evaluated on finite congestion.)
    let x = x.max(-746.0);
    let t = x * LOG2_E + SHIFT;
    let n = t - SHIFT;
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // e^r via Horner on the degree-13 Taylor expansion.
    let mut p = 1.0 / 6_227_020_800.0; // 1/13!
    p = p * r + 1.0 / 479_001_600.0; // 1/12!
    p = p * r + 1.0 / 39_916_800.0; // 1/11!
    p = p * r + 1.0 / 3_628_800.0; // 1/10!
    p = p * r + 1.0 / 362_880.0; // 1/9!
    p = p * r + 1.0 / 40_320.0; // 1/8!
    p = p * r + 1.0 / 5_040.0; // 1/7!
    p = p * r + 1.0 / 720.0; // 1/6!
    p = p * r + 1.0 / 120.0; // 1/5!
    p = p * r + 1.0 / 24.0; // 1/4!
    p = p * r + 1.0 / 6.0; // 1/3!
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    // `t` lives in [2^52, 2^53), so its mantissa field is exactly `2^51 + n`;
    // extract n without a float→int conversion instruction.
    let n = (t.to_bits() & 0x000F_FFFF_FFFF_FFFF) as i64 - (1i64 << 51);
    // 2^n = 2^(n/2) · 2^(n - n/2): each half exponent is ≥ -1022, so both
    // factors are normal and the product underflows gradually.
    let half = n >> 1;
    let pow2 = |e: i64| f64::from_bits(((e + 1023) as u64) << 52);
    p * pow2(half) * pow2(n - half)
}

/// Numerically stable soft-max `ln Σ_i (e^{y_i} + e^{-y_i})`.
///
/// # Empty input
///
/// `smax(&[])` returns `0.0` as a sentinel. The paper's potential
/// `ln Σ_i e^{±y_i}` is **undefined** over an empty congestion vector (the
/// sum is empty, so the logarithm diverges); an empty row or edge vector can
/// only arise from a graph with no edges, which every solver entry point
/// rejects with [`flowgraph::GraphError::NoEdges`] before the potential is
/// ever evaluated. The sentinel exists so this low-level helper stays total;
/// do not build new callers that rely on it.
pub fn smax(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = values.iter().fold(0.0f64, |acc, &y| acc.max(y.abs()));
    // Four independent accumulators so the exponential pass is not serialized
    // behind one floating-point add chain (and can be vectorized).
    let mut acc = [0.0f64; 4];
    let mut chunks = values.chunks_exact(4);
    for c in &mut chunks {
        acc[0] += exp_nonpos(c[0] - m) + exp_nonpos(-c[0] - m);
        acc[1] += exp_nonpos(c[1] - m) + exp_nonpos(-c[1] - m);
        acc[2] += exp_nonpos(c[2] - m) + exp_nonpos(-c[2] - m);
        acc[3] += exp_nonpos(c[3] - m) + exp_nonpos(-c[3] - m);
    }
    for &y in chunks.remainder() {
        acc[0] += exp_nonpos(y - m) + exp_nonpos(-y - m);
    }
    let sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    m + sum.ln()
}

/// The normalized soft-max gradient weights
/// `(e^{y_i} − e^{-y_i}) / Σ_j (e^{y_j} + e^{-y_j})`, computed stably given
/// `smax_value = smax(values)`.
pub fn smax_weights(values: &[f64], smax_value: f64) -> Vec<f64> {
    let mut out = vec![0.0; values.len()];
    smax_weights_into(values, smax_value, &mut out);
    out
}

/// Allocation-free form of [`smax_weights`]: writes the weights into `out`.
///
/// # Panics
///
/// Panics if `out.len() != values.len()`.
pub fn smax_weights_into(values: &[f64], smax_value: f64, out: &mut [f64]) {
    assert_eq!(out.len(), values.len(), "weight buffer length mismatch");
    for (w, &y) in out.iter_mut().zip(values) {
        *w = exp_nonpos(y - smax_value) - exp_nonpos(-y - smax_value);
    }
}

/// Fused soft-max + gradient weights: computes `smax(values)` and writes the
/// normalized weights `(e^{y_i} − e^{-y_i}) / Σ_j (e^{y_j} + e^{-y_j})` into
/// `out` in a single pass over the exponentials.
///
/// Where [`smax`] followed by [`smax_weights_into`] evaluates four
/// exponentials per entry, the fused form evaluates two: with
/// `m = max_i |y_i|`, each `e^{±y_i - m}` is computed once, the weight is the
/// scaled difference `(e1 − e2) / sum`, and the soft-max is `m + ln(sum)`.
/// This is the gradient descent's hot path — the row vector has
/// `trees × nodes` entries and is re-weighted on every potential evaluation.
///
/// # Panics
///
/// Panics if `out.len() != values.len()`.
pub fn smax_and_weights_into(values: &[f64], out: &mut [f64]) -> f64 {
    assert_eq!(out.len(), values.len(), "weight buffer length mismatch");
    if values.is_empty() {
        return 0.0;
    }
    let m = values.iter().fold(0.0f64, |acc, &y| acc.max(y.abs()));
    // Same split-accumulator trick as [`smax`]: the weight store has no loop
    // dependence, and the sum is spread over four chains.
    let mut acc = [0.0f64; 4];
    let mut vchunks = values.chunks_exact(4);
    let mut wchunks = out.chunks_exact_mut(4);
    for (c, w) in (&mut vchunks).zip(&mut wchunks) {
        for lane in 0..4 {
            let e1 = exp_nonpos(c[lane] - m);
            let e2 = exp_nonpos(-c[lane] - m);
            acc[lane] += e1 + e2;
            w[lane] = e1 - e2;
        }
    }
    for (&y, w) in vchunks.remainder().iter().zip(wchunks.into_remainder()) {
        let e1 = exp_nonpos(y - m);
        let e2 = exp_nonpos(-y - m);
        acc[0] += e1 + e2;
        *w = e1 - e2;
    }
    let sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for w in out.iter_mut() {
        *w /= sum;
    }
    m + sum.ln()
}

/// Runs Algorithm 2 for the demand `b` on graph `g` with congestion
/// approximator `r`.
///
/// The returned flow is expressed in the scale of the input demand; it
/// approximately satisfies `Bf ≈ b` with near-optimal congestion. The
/// residual `b − Bf` is small relative to `‖b‖` and is intended to be routed
/// over a spanning tree by the caller (Algorithm 1, steps 5–6).
///
/// # Panics
///
/// Panics if `b` does not match the graph's node count.
pub fn almost_route(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    config: &AlmostRouteConfig,
) -> AlmostRouteResult {
    let mut scratch = AlmostRouteScratch::default();
    almost_route_with(g, r, b, config, &mut scratch)
}

/// [`almost_route`] with caller-owned scratch buffers: after the buffers are
/// warm (first call per instance shape), the gradient loop performs zero heap
/// allocations per iteration. This is the entry point the
/// [`crate::PreparedMaxFlow`] session uses for every query.
///
/// # Panics
///
/// Panics if `b` does not match the graph's node count.
pub fn almost_route_with(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    config: &AlmostRouteConfig,
    scratch: &mut AlmostRouteScratch,
) -> AlmostRouteResult {
    almost_route_warm_with(g, r, b, config, scratch, None)
}

/// [`almost_route_with`] with an optional warm-start flow.
///
/// `warm` is a flow in the scale of the input demand `b` — typically a
/// previous query's answer for the same (or reversed) terminal pair, rescaled
/// to the new target. The descent starts from that flow instead of zero: the
/// demand term of the potential then starts near its minimum, so queries
/// whose answer is close to the warm flow converge in a handful of
/// iterations. Any flow is a valid starting point (the descent converges from
/// anywhere); a bad one merely wastes the head start.
///
/// With `warm = None` this is **byte-for-byte identical** to
/// [`almost_route_with`] — the cold-start path executes exactly the same
/// floating-point operations.
///
/// # Panics
///
/// Panics if `b` does not match the graph's node count, or if `warm` does not
/// match the graph's edge count.
pub fn almost_route_warm_with(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    config: &AlmostRouteConfig,
    scratch: &mut AlmostRouteScratch,
    warm: Option<&FlowVec>,
) -> AlmostRouteResult {
    assert_eq!(b.len(), g.num_nodes(), "demand length mismatch");
    scratch.ensure(g, r);
    let n = g.num_nodes().max(2) as f64;
    let m = g.num_edges();
    let eps = config.epsilon.clamp(1e-3, 1.0);
    // Practical default: the provable bound clamped to a small constant.
    // Sherman's analysis wants a valid upper bound on the approximator
    // quality, but large α values slow the descent quadratically; the
    // top-level solver certifies the final quality independently (the
    // value/upper-bound bracket), so a smaller working α is safe and the
    // experiments report the measured quality. Pass `alpha` explicitly to
    // use the theoretical schedule.
    let alpha = config
        .alpha
        .unwrap_or_else(|| r.provable_alpha().clamp(1.0, 6.0))
        .max(1.0);

    // Degenerate cases: zero demand or an edgeless graph.
    let base_norm = scratch.congestion_lower_bound(r, b);
    if base_norm <= 0.0 || m == 0 {
        return AlmostRouteResult {
            flow: FlowVec::zeros(m),
            iterations: 0,
            scaling_steps: 0,
            final_potential: 0.0,
            hit_iteration_cap: false,
        };
    }

    // Line 1 of Algorithm 2: scale the demand so that the congestion term of
    // the potential starts at Θ(ε⁻¹ log n).
    let target = 16.0 * n.ln() / eps;
    let kb = target / (2.0 * alpha * base_norm);
    let mut b_work = b.clone();
    b_work.scale(kb);
    let mut total_scale = kb;

    // Warm start: begin the descent at the supplied flow (brought into the
    // working scale) instead of zero.
    let mut f = match warm {
        Some(w) => {
            assert_eq!(w.len(), m, "warm-start flow length mismatch");
            let mut f = w.clone();
            f.scale(kb);
            f
        }
        None => FlowVec::zeros(m),
    };
    let mut iterations = 0usize;
    let mut scaling_steps = 0usize;
    #[allow(unused_assignments)]
    let mut potential = 0.0;
    let mut hit_cap = false;

    // Adaptive step-size state. `step_scale` stays exactly 1.0 when the knob
    // is off, and `x * 1.0` is an IEEE-754 identity, so the disabled path is
    // byte-identical to the fixed schedule.
    let adaptive = config.adaptive_steps;
    let mut step_scale = 1.0f64;
    let mut last_accepted: Option<f64> = None;

    loop {
        // Evaluate the potential and its gradient into the scratch buffers.
        let phi =
            potential_and_gradient_scratch(g, r, &b_work, &f, alpha, scratch, &config.parallelism);

        // Backtracking: if the last adaptive step overshot (the potential
        // went up), undo it and retry from the snapshot with half the scale.
        if adaptive {
            if let Some(prev) = last_accepted {
                if phi > prev {
                    f.values_mut().copy_from_slice(&scratch.flow_backup);
                    step_scale = (step_scale * 0.5).max(1.0 / 1024.0);
                    last_accepted = None;
                    iterations += 1;
                    if iterations >= config.max_iterations {
                        potential = prev;
                        hit_cap = true;
                        break;
                    }
                    continue;
                }
            }
        }
        potential = phi;

        // Lines 4–5: while φ(f) < 16 ε⁻¹ log n, scale f and b up by 17/16.
        if phi < target && scaling_steps < 10_000 {
            // A warm start routes the demand almost exactly, so its potential
            // begins far below the target and the one-step-per-evaluation
            // schedule would burn one full gradient evaluation per 17/16
            // factor. All potential arguments scale linearly with the flow
            // and demand, so jump most of the remaining distance in a single
            // multiplication (deliberately undershooting by one step) and let
            // the regular steps finish; re-entering this branch jumps again,
            // which converges in a handful of evaluations. Cold starts never
            // take this path, keeping the fixed schedule byte-identical.
            if warm.is_some() && phi.is_finite() && phi > 0.0 {
                let jump = ((target / phi).ln() / (17.0f64 / 16.0).ln() - 1.0).floor();
                let remaining = (10_000 - scaling_steps) as f64 - 1.0;
                let jump = jump.min(remaining).max(0.0) as usize;
                if jump > 0 {
                    let factor = (17.0f64 / 16.0).powi(jump as i32);
                    f.scale(factor);
                    b_work.scale(factor);
                    total_scale *= factor;
                    scaling_steps += jump;
                }
            }
            f.scale(17.0 / 16.0);
            b_work.scale(17.0 / 16.0);
            total_scale *= 17.0 / 16.0;
            scaling_steps += 1;
            // Rescaling moves the potential; the acceptance reference with it.
            last_accepted = None;
            continue;
        }

        // Line 6: δ = Σ_e |cap(e) · ∂φ/∂f_e|.
        let delta: f64 = g
            .edge_ids()
            .map(|e| (g.capacity(e) * scratch.grad[e.index()]).abs())
            .sum();

        if delta < eps / 4.0 {
            break;
        }
        if iterations >= config.max_iterations {
            hit_cap = true;
            break;
        }

        // Line 8: f_e ← f_e − sgn(∂φ/∂f_e) · cap(e) · δ / (1 + 4α²),
        // stretched by the adaptive scale when enabled.
        let step = delta / (1.0 + 4.0 * alpha * alpha) * step_scale;
        if adaptive {
            if scratch.flow_backup.len() != m {
                scratch.flow_backup.resize(m, 0.0);
            }
            scratch.flow_backup.copy_from_slice(f.values());
            last_accepted = Some(phi);
            step_scale = (step_scale * 1.25).min(8.0);
        }
        for e in g.edge_ids() {
            let gd = scratch.grad[e.index()];
            if gd != 0.0 {
                f.add(e, -gd.signum() * g.capacity(e) * step);
            }
        }
        iterations += 1;
    }

    // Lines 10–11: undo the scaling so the flow matches the original demand.
    f.scale(1.0 / total_scale);
    AlmostRouteResult {
        flow: f,
        iterations,
        scaling_steps,
        final_potential: potential,
        hit_iteration_cap: hit_cap,
    }
}

/// Evaluates `φ(f)` and `∂φ/∂f` for the working demand `b`.
///
/// The second term's gradient is computed through node potentials, exactly as
/// in §9.1: prices on the tree cuts (one per row of `R`) are pushed down the
/// trees by `Rᵀ`, and `∂φ₂/∂f_e = π_u − π_v` for the edge `e = (u, v)`.
pub fn potential_and_gradient(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    f: &FlowVec,
    alpha: f64,
) -> (f64, Vec<f64>) {
    let mut scratch = AlmostRouteScratch::for_instance(g, r);
    let phi =
        potential_and_gradient_scratch(g, r, b, f, alpha, &mut scratch, &Parallelism::sequential());
    (phi, scratch.grad)
}

/// Evaluates `φ(f)` into the return value and `∂φ/∂f` into `scratch.grad`,
/// touching no heap memory beyond the pre-sized scratch buffers (at
/// `Parallelism::sequential()`; parallel evaluations additionally use the
/// scratch's tree-major workspaces, warmed on first use).
fn potential_and_gradient_scratch(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    f: &FlowVec,
    alpha: f64,
    scratch: &mut AlmostRouteScratch,
    par: &Parallelism,
) -> f64 {
    // φ1 = smax(C⁻¹ f), weights fused into the same exponential pass.
    for (x, e) in scratch.scaled_flow.iter_mut().zip(g.edge_ids()) {
        *x = f.get(e) / g.capacity(e);
    }
    let phi1 = smax_and_weights_into(&scratch.scaled_flow, &mut scratch.w1);

    // φ2 = smax(2α R (b − Bf)).
    b.residual_into(g, f, &mut scratch.residual);
    r.apply_into_par(&scratch.residual, &mut scratch.rows, &mut scratch.op, par)
        .expect("scratch demand matches the approximator");
    // Doubling is exact in IEEE-754, so `y * (2α)` rounds identically to the
    // original `2α · y` evaluation order.
    for y in scratch.rows.iter_mut() {
        *y *= 2.0 * alpha;
    }
    let phi2 = smax_and_weights_into(&scratch.rows, &mut scratch.prices);
    // Prices per row: q_i · 2α (the 1/cap_i factor is applied inside Rᵀ).
    for q in scratch.prices.iter_mut() {
        *q *= 2.0 * alpha;
    }
    r.apply_transpose_into_par(
        &scratch.prices,
        &mut scratch.potentials,
        &mut scratch.op,
        par,
    )
    .expect("scratch prices match the approximator rows");

    for (id, e) in g.edges() {
        let g1 = scratch.w1[id.index()] / g.capacity(id);
        // Increasing f_e moves one unit of excess from tail to head, so the
        // residual (b − Bf) decreases at the head and increases at the tail;
        // differentiating the second soft-max yields π_tail − π_head.
        let g2 = scratch.potentials[e.tail.index()] - scratch.potentials[e.head.index()];
        scratch.grad[id.index()] = g1 + g2;
    }
    phi1 + phi2
}

#[cfg(test)]
mod tests {
    use super::*;
    use capprox::RackeConfig;
    use flowgraph::{gen, NodeId};

    fn approximator(g: &Graph, trees: usize) -> CongestionApproximator {
        CongestionApproximator::build(g, &RackeConfig::default().with_num_trees(trees)).unwrap()
    }

    #[test]
    fn smax_matches_direct_computation() {
        let y = [0.5, -1.0, 2.0];
        let direct: f64 = y
            .iter()
            .map(|&v: &f64| v.exp() + (-v).exp())
            .sum::<f64>()
            .ln();
        assert!((smax(&y) - direct).abs() < 1e-12);
        assert_eq!(smax(&[]), 0.0);
        // Stability for large values.
        let big = [500.0, -600.0];
        assert!(smax(&big).is_finite());
        assert!((smax(&big) - 600.0).abs() < 1.0);
    }

    #[test]
    fn smax_upper_bounds_max() {
        let y: [f64; 4] = [0.3, -2.5, 1.1, 0.0];
        let max_abs = y.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let s = smax(&y);
        assert!(s >= max_abs);
        assert!(s <= max_abs + (2.0 * y.len() as f64).ln());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let g = gen::grid(3, 3, 1.0);
        let r = approximator(&g, 3);
        let b = Demand::st(&g, NodeId(0), NodeId(8), 1.0);
        let mut f = FlowVec::zeros(g.num_edges());
        // A non-trivial starting point.
        for e in g.edge_ids() {
            f.set(e, 0.1 * (e.index() as f64 % 3.0) - 0.1);
        }
        let alpha = 4.0;
        let (phi, grad) = potential_and_gradient(&g, &r, &b, &f, alpha);
        let h = 1e-6;
        for e in g.edge_ids() {
            let mut f2 = f.clone();
            f2.add(e, h);
            let (phi2, _) = potential_and_gradient(&g, &r, &b, &f2, alpha);
            let numeric = (phi2 - phi) / h;
            assert!(
                (numeric - grad[e.index()]).abs() < 1e-3 * (1.0 + numeric.abs()),
                "gradient mismatch at edge {e}: analytic {} vs numeric {numeric}",
                grad[e.index()]
            );
        }
    }

    #[test]
    fn almost_route_reduces_residual() {
        let g = gen::grid(4, 4, 1.0);
        let r = approximator(&g, 6);
        let b = Demand::st(&g, NodeId(0), NodeId(15), 1.0);
        let result = almost_route(&g, &r, &b, &AlmostRouteConfig::default());
        assert!(result.iterations > 0);
        // The residual demand (measured through the approximator) must be
        // substantially smaller than the original demand.
        let residual = b.residual(&g, &result.flow);
        let before = r.congestion_lower_bound(&b);
        let after = r.congestion_lower_bound(&residual);
        assert!(
            after < 0.7 * before,
            "residual congestion {after} not sufficiently below {before}"
        );
    }

    #[test]
    fn almost_route_zero_demand_is_zero_flow() {
        let g = gen::path(5, 1.0);
        let r = approximator(&g, 2);
        let b = Demand::zeros(5);
        let result = almost_route(&g, &r, &b, &AlmostRouteConfig::default());
        assert_eq!(result.iterations, 0);
        assert!(result.flow.values().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn tighter_epsilon_needs_more_iterations() {
        let g = gen::grid(4, 4, 1.0);
        let r = approximator(&g, 6);
        let b = Demand::st(&g, NodeId(0), NodeId(15), 1.0);
        let loose = almost_route(
            &g,
            &r,
            &b,
            &AlmostRouteConfig {
                epsilon: 0.8,
                ..Default::default()
            },
        );
        let tight = almost_route(
            &g,
            &r,
            &b,
            &AlmostRouteConfig {
                epsilon: 0.2,
                ..Default::default()
            },
        );
        assert!(
            tight.iterations >= loose.iterations,
            "tight ε should need at least as many iterations ({} vs {})",
            tight.iterations,
            loose.iterations
        );
    }

    #[test]
    fn iteration_cap_is_respected() {
        let g = gen::grid(5, 5, 1.0);
        let r = approximator(&g, 4);
        let b = Demand::st(&g, NodeId(0), NodeId(24), 1.0);
        let result = almost_route(
            &g,
            &r,
            &b,
            &AlmostRouteConfig {
                epsilon: 0.05,
                alpha: Some(8.0),
                max_iterations: 3,
                ..Default::default()
            },
        );
        assert!(result.iterations <= 3);
        assert!(result.hit_iteration_cap);
    }
}
