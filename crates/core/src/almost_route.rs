//! Sherman's `AlmostRoute` gradient descent (paper §9.1, Algorithm 2).
//!
//! Given a demand vector `b` and a congestion approximator `R`, the routine
//! minimizes the smoothed potential
//!
//! ```text
//! φ(f) = smax(C⁻¹ f) + smax(2α · R(b − Bf))
//! ```
//!
//! where `smax(y) = ln Σ_i (e^{y_i} + e^{-y_i})` is the soft-max. The first
//! term penalizes edge congestion, the second penalizes unrouted demand as
//! seen through the cuts of the approximator. Each iteration takes a signed
//! step proportional to the edge capacity, exactly as in Algorithm 2; the
//! result is a flow that approximately routes `b` with near-optimal
//! congestion, leaving a small residual that the caller repairs over a
//! spanning tree (Algorithm 1).

use capprox::{CongestionApproximator, OperatorScratch};
use flowgraph::{Demand, FlowVec, Graph};
use parallel::Parallelism;
use serde::{Deserialize, Serialize};

/// Configuration of the gradient descent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlmostRouteConfig {
    /// Target accuracy ε of the routing step.
    pub epsilon: f64,
    /// The approximation quality α assumed for the congestion approximator.
    /// `None` uses the approximator's provable bound.
    pub alpha: Option<f64>,
    /// Hard cap on the number of gradient iterations.
    pub max_iterations: usize,
    /// Adaptive step-size scaling: grow the step while the potential keeps
    /// decreasing, backtrack (restore the flow and halve the scale) when a
    /// step overshoots. Off by default — the fixed `δ/(1+4α²)` schedule of
    /// Algorithm 2 is byte-for-byte preserved when this is `false`.
    #[serde(default)]
    pub adaptive_steps: bool,
    /// Worker pool for the per-iteration operator evaluations (`R·b`, `Rᵀ·y`
    /// fan per-tree aggregations across threads). Purely a performance knob:
    /// results are byte-identical to sequential for any thread count.
    /// Machine-specific, so never serialized (deserialized configs run
    /// sequentially).
    #[serde(skip, default)]
    pub parallelism: Parallelism,
}

impl Default for AlmostRouteConfig {
    fn default() -> Self {
        AlmostRouteConfig {
            epsilon: 0.5,
            alpha: None,
            max_iterations: 20_000,
            adaptive_steps: false,
            parallelism: Parallelism::sequential(),
        }
    }
}

impl AlmostRouteConfig {
    /// Replaces the target accuracy ε.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Overrides the approximator quality α assumed by the descent
    /// (`None` restores the provable bound).
    #[must_use]
    pub fn with_alpha(mut self, alpha: Option<f64>) -> Self {
        self.alpha = alpha;
        self
    }

    /// Replaces the hard cap on gradient iterations.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Enables or disables adaptive step-size scaling (see
    /// [`AlmostRouteConfig::adaptive_steps`]).
    #[must_use]
    pub fn with_adaptive_steps(mut self, adaptive_steps: bool) -> Self {
        self.adaptive_steps = adaptive_steps;
        self
    }

    /// Replaces the worker pool used for the operator evaluations.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// Reusable buffers for the gradient descent: everything the inner loop
/// needs, sized once per (graph, approximator) pair, so that the steady-state
/// iteration allocates nothing on the heap.
///
/// A [`crate::PreparedMaxFlow`] session owns one of these across queries; the
/// free-function wrappers allocate a fresh one per call.
#[derive(Debug, Clone, Default)]
pub struct AlmostRouteScratch {
    /// `C⁻¹ f`, one entry per edge.
    scaled_flow: Vec<f64>,
    /// Soft-max weights of the congestion term, one entry per edge.
    w1: Vec<f64>,
    /// Residual demand `b − Bf`, one entry per node.
    residual: Demand,
    /// `R (b − Bf)` scaled by 2α, one entry per approximator row; doubles as
    /// the price vector after the weight computation.
    rows: Vec<f64>,
    /// Soft-max weights / prices of the demand term, one entry per row.
    prices: Vec<f64>,
    /// Node potentials `π = Rᵀ prices`.
    potentials: Vec<f64>,
    /// Gradient `∂φ/∂f`, one entry per edge.
    grad: Vec<f64>,
    /// Pre-step snapshot of the flow, used by the adaptive-step backtracking
    /// to undo an overshooting step. Only allocated when adaptive steps are
    /// enabled.
    flow_backup: Vec<f64>,
    /// Node-sized scratch borrowed by the operator evaluations.
    op: OperatorScratch,
}

impl AlmostRouteScratch {
    /// Scratch pre-sized for `g` and `r` (also happens lazily on first use).
    pub fn for_instance(g: &Graph, r: &CongestionApproximator) -> Self {
        let mut scratch = AlmostRouteScratch::default();
        scratch.ensure(g, r);
        scratch
    }

    fn ensure(&mut self, g: &Graph, r: &CongestionApproximator) {
        let (n, m, rows) = (g.num_nodes(), g.num_edges(), r.num_rows());
        fn fit(buf: &mut Vec<f64>, len: usize) {
            if buf.len() != len {
                buf.resize(len, 0.0);
            }
        }
        fit(&mut self.scaled_flow, m);
        fit(&mut self.w1, m);
        fit(&mut self.grad, m);
        fit(&mut self.rows, rows);
        fit(&mut self.prices, rows);
        fit(&mut self.potentials, n);
        if self.residual.len() != n {
            self.residual = Demand::zeros(n);
        }
        self.op.ensure_nodes(n);
    }

    /// `‖R·b‖_∞` evaluated through the scratch buffers — the allocation-free
    /// counterpart of [`CongestionApproximator::congestion_lower_bound`],
    /// used at the phase boundaries of a session query. Deliberately
    /// sequential: phase-boundary norm checks run once per phase, not once
    /// per iteration, so they are off the hot path the parallel operators
    /// accelerate.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the approximator's node count.
    pub fn congestion_lower_bound(&mut self, r: &CongestionApproximator, b: &Demand) -> f64 {
        if self.rows.len() != r.num_rows() {
            self.rows.resize(r.num_rows(), 0.0);
        }
        self.op.ensure_nodes(r.num_nodes());
        r.apply_into(b, &mut self.rows, &mut self.op)
            .expect("demand length mismatch");
        self.rows.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }
}

/// Outcome of one `AlmostRoute` call.
#[derive(Debug, Clone)]
pub struct AlmostRouteResult {
    /// The computed flow (in the *original* demand scale).
    pub flow: FlowVec,
    /// Number of gradient iterations performed.
    pub iterations: usize,
    /// Number of potential-rescaling steps (the `17/16` loop of Algorithm 2).
    pub scaling_steps: usize,
    /// Final value of the potential (in the working scale).
    pub final_potential: f64,
    /// Whether the iteration cap was hit before `δ < ε/4`.
    pub hit_iteration_cap: bool,
}

/// Branch-free `e^x` for `x ≤ 0`, accurate to ~1 ulp, written so the
/// autovectorizer can chew on whole slices of arguments (no libm call, no
/// data-dependent branches).
///
/// Standard Cody–Waite argument reduction `x = n·ln2 + r` with `|r| ≤ ln2/2`,
/// a degree-13 Taylor polynomial for `e^r` (truncation error < 5e-18 on that
/// interval), and a branch-free reconstruction of `2^n` as the product of two
/// half-exponent powers so that results in the subnormal range (down to
/// `x ≈ -745`) underflow gradually instead of needing a slow path. Inputs
/// below the underflow threshold round to `±0` through the same product.
#[inline(always)]
fn exp_nonpos(x: f64) -> f64 {
    const LOG2_E: f64 = std::f64::consts::LOG2_E;
    // The canonical Cody–Waite split of ln 2; the full published digits are
    // kept even where they exceed f64 precision so the pair is recognizably
    // the standard one.
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f64 = 6.931_471_803_691_238_16e-1;
    #[allow(clippy::excessive_precision)]
    const LN2_LO: f64 = 1.908_214_929_270_587_70e-10;
    // 1.5·2^52: adding it forces `x·log2(e)` to round to the nearest integer
    // in the low mantissa bits (round-to-nearest-even, same as `round_ties_even`),
    // without the data-dependent branch sequence `f64::round` lowers to.
    const SHIFT: f64 = 6_755_399_441_055_744.0;
    // Everything at or below -746 underflows to zero anyway; clamping keeps
    // the shifted exponent in range branchlessly. (NaN also maps to the
    // threshold — the potential is only evaluated on finite congestion.)
    let x = x.max(-746.0);
    let t = x * LOG2_E + SHIFT;
    let n = t - SHIFT;
    let r = (x - n * LN2_HI) - n * LN2_LO;
    // e^r via Horner on the degree-13 Taylor expansion.
    let mut p = 1.0 / 6_227_020_800.0; // 1/13!
    p = p * r + 1.0 / 479_001_600.0; // 1/12!
    p = p * r + 1.0 / 39_916_800.0; // 1/11!
    p = p * r + 1.0 / 3_628_800.0; // 1/10!
    p = p * r + 1.0 / 362_880.0; // 1/9!
    p = p * r + 1.0 / 40_320.0; // 1/8!
    p = p * r + 1.0 / 5_040.0; // 1/7!
    p = p * r + 1.0 / 720.0; // 1/6!
    p = p * r + 1.0 / 120.0; // 1/5!
    p = p * r + 1.0 / 24.0; // 1/4!
    p = p * r + 1.0 / 6.0; // 1/3!
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    // `t` lives in [2^52, 2^53), so its mantissa field is exactly `2^51 + n`;
    // extract n without a float→int conversion instruction.
    let n = (t.to_bits() & 0x000F_FFFF_FFFF_FFFF) as i64 - (1i64 << 51);
    // 2^n = 2^(n/2) · 2^(n - n/2): each half exponent is ≥ -1022, so both
    // factors are normal and the product underflows gradually.
    let half = n >> 1;
    let pow2 = |e: i64| f64::from_bits(((e + 1023) as u64) << 52);
    p * pow2(half) * pow2(n - half)
}

/// Numerically stable soft-max `ln Σ_i (e^{y_i} + e^{-y_i})`.
///
/// # Empty input
///
/// `smax(&[])` returns `0.0` as a sentinel. The paper's potential
/// `ln Σ_i e^{±y_i}` is **undefined** over an empty congestion vector (the
/// sum is empty, so the logarithm diverges); an empty row or edge vector can
/// only arise from a graph with no edges, which every solver entry point
/// rejects with [`flowgraph::GraphError::NoEdges`] before the potential is
/// ever evaluated. The sentinel exists so this low-level helper stays total;
/// do not build new callers that rely on it.
pub fn smax(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = values.iter().fold(0.0f64, |acc, &y| acc.max(y.abs()));
    // Four independent accumulators so the exponential pass is not serialized
    // behind one floating-point add chain (and can be vectorized).
    let mut acc = [0.0f64; 4];
    let mut chunks = values.chunks_exact(4);
    for c in &mut chunks {
        acc[0] += exp_nonpos(c[0] - m) + exp_nonpos(-c[0] - m);
        acc[1] += exp_nonpos(c[1] - m) + exp_nonpos(-c[1] - m);
        acc[2] += exp_nonpos(c[2] - m) + exp_nonpos(-c[2] - m);
        acc[3] += exp_nonpos(c[3] - m) + exp_nonpos(-c[3] - m);
    }
    for &y in chunks.remainder() {
        acc[0] += exp_nonpos(y - m) + exp_nonpos(-y - m);
    }
    let sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    m + sum.ln()
}

/// The normalized soft-max gradient weights
/// `(e^{y_i} − e^{-y_i}) / Σ_j (e^{y_j} + e^{-y_j})`, computed stably given
/// `smax_value = smax(values)`.
pub fn smax_weights(values: &[f64], smax_value: f64) -> Vec<f64> {
    let mut out = vec![0.0; values.len()];
    smax_weights_into(values, smax_value, &mut out);
    out
}

/// Allocation-free form of [`smax_weights`]: writes the weights into `out`.
///
/// # Panics
///
/// Panics if `out.len() != values.len()`.
pub fn smax_weights_into(values: &[f64], smax_value: f64, out: &mut [f64]) {
    assert_eq!(out.len(), values.len(), "weight buffer length mismatch");
    for (w, &y) in out.iter_mut().zip(values) {
        *w = exp_nonpos(y - smax_value) - exp_nonpos(-y - smax_value);
    }
}

/// Fused soft-max + gradient weights: computes `smax(values)` and writes the
/// normalized weights `(e^{y_i} − e^{-y_i}) / Σ_j (e^{y_j} + e^{-y_j})` into
/// `out` in a single pass over the exponentials.
///
/// Where [`smax`] followed by [`smax_weights_into`] evaluates four
/// exponentials per entry, the fused form evaluates two: with
/// `m = max_i |y_i|`, each `e^{±y_i - m}` is computed once, the weight is the
/// scaled difference `(e1 − e2) / sum`, and the soft-max is `m + ln(sum)`.
/// This is the gradient descent's hot path — the row vector has
/// `trees × nodes` entries and is re-weighted on every potential evaluation.
///
/// # Panics
///
/// Panics if `out.len() != values.len()`.
pub fn smax_and_weights_into(values: &[f64], out: &mut [f64]) -> f64 {
    assert_eq!(out.len(), values.len(), "weight buffer length mismatch");
    if values.is_empty() {
        return 0.0;
    }
    let m = values.iter().fold(0.0f64, |acc, &y| acc.max(y.abs()));
    // Same split-accumulator trick as [`smax`]: the weight store has no loop
    // dependence, and the sum is spread over four chains.
    let mut acc = [0.0f64; 4];
    let mut vchunks = values.chunks_exact(4);
    let mut wchunks = out.chunks_exact_mut(4);
    for (c, w) in (&mut vchunks).zip(&mut wchunks) {
        for lane in 0..4 {
            let e1 = exp_nonpos(c[lane] - m);
            let e2 = exp_nonpos(-c[lane] - m);
            acc[lane] += e1 + e2;
            w[lane] = e1 - e2;
        }
    }
    for (&y, w) in vchunks.remainder().iter().zip(wchunks.into_remainder()) {
        let e1 = exp_nonpos(y - m);
        let e2 = exp_nonpos(-y - m);
        acc[0] += e1 + e2;
        *w = e1 - e2;
    }
    let sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for w in out.iter_mut() {
        *w /= sum;
    }
    m + sum.ln()
}

/// Runs Algorithm 2 for the demand `b` on graph `g` with congestion
/// approximator `r`.
///
/// The returned flow is expressed in the scale of the input demand; it
/// approximately satisfies `Bf ≈ b` with near-optimal congestion. The
/// residual `b − Bf` is small relative to `‖b‖` and is intended to be routed
/// over a spanning tree by the caller (Algorithm 1, steps 5–6).
///
/// # Panics
///
/// Panics if `b` does not match the graph's node count.
pub fn almost_route(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    config: &AlmostRouteConfig,
) -> AlmostRouteResult {
    let mut scratch = AlmostRouteScratch::default();
    almost_route_with(g, r, b, config, &mut scratch)
}

/// [`almost_route`] with caller-owned scratch buffers: after the buffers are
/// warm (first call per instance shape), the gradient loop performs zero heap
/// allocations per iteration. This is the entry point the
/// [`crate::PreparedMaxFlow`] session uses for every query.
///
/// # Panics
///
/// Panics if `b` does not match the graph's node count.
pub fn almost_route_with(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    config: &AlmostRouteConfig,
    scratch: &mut AlmostRouteScratch,
) -> AlmostRouteResult {
    almost_route_warm_with(g, r, b, config, scratch, None)
}

/// [`almost_route_with`] with an optional warm-start flow.
///
/// `warm` is a flow in the scale of the input demand `b` — typically a
/// previous query's answer for the same (or reversed) terminal pair, rescaled
/// to the new target. The descent starts from that flow instead of zero: the
/// demand term of the potential then starts near its minimum, so queries
/// whose answer is close to the warm flow converge in a handful of
/// iterations. Any flow is a valid starting point (the descent converges from
/// anywhere); a bad one merely wastes the head start.
///
/// With `warm = None` this is **byte-for-byte identical** to
/// [`almost_route_with`] — the cold-start path executes exactly the same
/// floating-point operations.
///
/// # Panics
///
/// Panics if `b` does not match the graph's node count, or if `warm` does not
/// match the graph's edge count.
pub fn almost_route_warm_with(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    config: &AlmostRouteConfig,
    scratch: &mut AlmostRouteScratch,
    warm: Option<&FlowVec>,
) -> AlmostRouteResult {
    assert_eq!(b.len(), g.num_nodes(), "demand length mismatch");
    scratch.ensure(g, r);
    let n = g.num_nodes().max(2) as f64;
    let m = g.num_edges();
    let eps = config.epsilon.clamp(1e-3, 1.0);
    // Practical default: the provable bound clamped to a small constant.
    // Sherman's analysis wants a valid upper bound on the approximator
    // quality, but large α values slow the descent quadratically; the
    // top-level solver certifies the final quality independently (the
    // value/upper-bound bracket), so a smaller working α is safe and the
    // experiments report the measured quality. Pass `alpha` explicitly to
    // use the theoretical schedule.
    let alpha = config
        .alpha
        .unwrap_or_else(|| r.provable_alpha().clamp(1.0, 6.0))
        .max(1.0);

    // Degenerate cases: zero demand or an edgeless graph.
    let base_norm = scratch.congestion_lower_bound(r, b);
    if base_norm <= 0.0 || m == 0 {
        return AlmostRouteResult {
            flow: FlowVec::zeros(m),
            iterations: 0,
            scaling_steps: 0,
            final_potential: 0.0,
            hit_iteration_cap: false,
        };
    }

    // Line 1 of Algorithm 2: scale the demand so that the congestion term of
    // the potential starts at Θ(ε⁻¹ log n).
    let target = 16.0 * n.ln() / eps;
    let kb = target / (2.0 * alpha * base_norm);
    let mut b_work = b.clone();
    b_work.scale(kb);
    let mut total_scale = kb;

    // Warm start: begin the descent at the supplied flow (brought into the
    // working scale) instead of zero.
    let mut f = match warm {
        Some(w) => {
            assert_eq!(w.len(), m, "warm-start flow length mismatch");
            let mut f = w.clone();
            f.scale(kb);
            f
        }
        None => FlowVec::zeros(m),
    };
    let mut iterations = 0usize;
    let mut scaling_steps = 0usize;
    #[allow(unused_assignments)]
    let mut potential = 0.0;
    let mut hit_cap = false;

    // Adaptive step-size state. `step_scale` stays exactly 1.0 when the knob
    // is off, and `x * 1.0` is an IEEE-754 identity, so the disabled path is
    // byte-identical to the fixed schedule.
    let adaptive = config.adaptive_steps;
    let mut step_scale = 1.0f64;
    let mut last_accepted: Option<f64> = None;

    loop {
        // Evaluate the potential and its gradient into the scratch buffers.
        let phi =
            potential_and_gradient_scratch(g, r, &b_work, &f, alpha, scratch, &config.parallelism);

        // Backtracking: if the last adaptive step overshot (the potential
        // went up), undo it and retry from the snapshot with half the scale.
        if adaptive {
            if let Some(prev) = last_accepted {
                if phi > prev {
                    f.values_mut().copy_from_slice(&scratch.flow_backup);
                    step_scale = (step_scale * 0.5).max(1.0 / 1024.0);
                    last_accepted = None;
                    iterations += 1;
                    if iterations >= config.max_iterations {
                        potential = prev;
                        hit_cap = true;
                        break;
                    }
                    continue;
                }
            }
        }
        potential = phi;

        // Lines 4–5: while φ(f) < 16 ε⁻¹ log n, scale f and b up by 17/16.
        if phi < target && scaling_steps < 10_000 {
            // A warm start routes the demand almost exactly, so its potential
            // begins far below the target and the one-step-per-evaluation
            // schedule would burn one full gradient evaluation per 17/16
            // factor. All potential arguments scale linearly with the flow
            // and demand, so jump most of the remaining distance in a single
            // multiplication (deliberately undershooting by one step) and let
            // the regular steps finish; re-entering this branch jumps again,
            // which converges in a handful of evaluations. Cold starts never
            // take this path, keeping the fixed schedule byte-identical.
            if warm.is_some() && phi.is_finite() && phi > 0.0 {
                let jump = ((target / phi).ln() / (17.0f64 / 16.0).ln() - 1.0).floor();
                let remaining = (10_000 - scaling_steps) as f64 - 1.0;
                let jump = jump.min(remaining).max(0.0) as usize;
                if jump > 0 {
                    let factor = (17.0f64 / 16.0).powi(jump as i32);
                    f.scale(factor);
                    b_work.scale(factor);
                    total_scale *= factor;
                    scaling_steps += jump;
                }
            }
            f.scale(17.0 / 16.0);
            b_work.scale(17.0 / 16.0);
            total_scale *= 17.0 / 16.0;
            scaling_steps += 1;
            // Rescaling moves the potential; the acceptance reference with it.
            last_accepted = None;
            continue;
        }

        // Line 6: δ = Σ_e |cap(e) · ∂φ/∂f_e|.
        let delta: f64 = g
            .edge_ids()
            .map(|e| (g.capacity(e) * scratch.grad[e.index()]).abs())
            .sum();

        if delta < eps / 4.0 {
            break;
        }
        if iterations >= config.max_iterations {
            hit_cap = true;
            break;
        }

        // Line 8: f_e ← f_e − sgn(∂φ/∂f_e) · cap(e) · δ / (1 + 4α²),
        // stretched by the adaptive scale when enabled.
        let step = delta / (1.0 + 4.0 * alpha * alpha) * step_scale;
        if adaptive {
            if scratch.flow_backup.len() != m {
                scratch.flow_backup.resize(m, 0.0);
            }
            scratch.flow_backup.copy_from_slice(f.values());
            last_accepted = Some(phi);
            step_scale = (step_scale * 1.25).min(8.0);
        }
        for e in g.edge_ids() {
            let gd = scratch.grad[e.index()];
            if gd != 0.0 {
                f.add(e, -gd.signum() * g.capacity(e) * step);
            }
        }
        iterations += 1;
    }

    // Lines 10–11: undo the scaling so the flow matches the original demand.
    f.scale(1.0 / total_scale);
    AlmostRouteResult {
        flow: f,
        iterations,
        scaling_steps,
        final_potential: potential,
        hit_iteration_cap: hit_cap,
    }
}

/// Dispatches a lane-blocked kernel to a monomorphized instantiation for the
/// session block widths (`K = 1..=8`) and to the dynamic fallback (`K = 0`,
/// meaning "read the runtime lane count") otherwise — the lane-inner loops
/// only vectorize with a compile-time trip count. Same operations in the
/// same order for every instantiation, so byte-identity is unaffected.
macro_rules! lane_dispatch {
    ($k:expr, $f:ident($($args:expr),* $(,)?)) => {
        match $k {
            1 => $f::<1>($($args),*),
            2 => $f::<2>($($args),*),
            3 => $f::<3>($($args),*),
            4 => $f::<4>($($args),*),
            5 => $f::<5>($($args),*),
            6 => $f::<6>($($args),*),
            7 => $f::<7>($($args),*),
            8 => $f::<8>($($args),*),
            _ => $f::<0>($($args),*),
        }
    };
}

/// Fused soft-max + gradient weights over `k` lane-major vectors — the
/// blocked counterpart of [`smax_and_weights_into`]. `values[i*k + l]` is
/// element `i` of lane `l`; the soft-max of lane `l` lands in `phis[l]` and
/// its normalized weights in `out[i*k + l]`.
///
/// Byte-identity: the scalar kernel accumulates element `i` into split
/// accumulator `i % 4` (remainder elements into accumulator 0) and reduces
/// `(a0 + a1) + (a2 + a3)`; this kernel keeps four accumulators **per lane**
/// and assigns element `i` of every lane to the same accumulator index, so
/// each lane's additions happen in the scalar order on the scalar values.
///
/// `in_scale`/`out_scale` fuse an element-wise pre-multiply of the input and
/// post-multiply of the weights into the soft-max sweeps. The products are
/// the exact multiplications the caller would otherwise issue in separate
/// passes over the block (`t = in_scale·y` before the max/exp folds,
/// `w = (w / sum)·out_scale` after the divide), so fusing them saves two
/// full memory round-trips over the block without changing a single bit of
/// the result. Pass `1.0` for a plain soft-max: IEEE multiplication by one
/// is an exact identity.
///
/// # Panics
///
/// Panics if the buffer lengths disagree with `k` (`out` must match
/// `values`, `maxes`/`phis` must hold `k` entries, `acc` must hold `4k`).
#[allow(clippy::too_many_arguments)]
fn smax_and_weights_block_into(
    values: &[f64],
    k: usize,
    in_scale: f64,
    out_scale: f64,
    out: &mut [f64],
    maxes: &mut [f64],
    acc: &mut [f64],
    phis: &mut [f64],
) {
    assert_eq!(out.len(), values.len(), "weight block length mismatch");
    assert!(values.len().is_multiple_of(k), "value block not lane-major");
    assert_eq!(maxes.len(), k, "max buffer length mismatch");
    assert_eq!(acc.len(), 4 * k, "accumulator buffer length mismatch");
    assert_eq!(phis.len(), k, "soft-max buffer length mismatch");
    lane_dispatch!(
        k,
        smax_and_weights_block_impl(values, k, in_scale, out_scale, out, maxes, acc, phis)
    );
}

/// Monomorphized body of [`smax_and_weights_block_into`]: `K > 0` pins the
/// lane count at compile time so the lane-inner loops vectorize; `K = 0`
/// reads the runtime `k_dyn`. Identical operations in identical order for
/// either path.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn smax_and_weights_block_impl<const K: usize>(
    values: &[f64],
    k_dyn: usize,
    in_scale: f64,
    out_scale: f64,
    out: &mut [f64],
    maxes: &mut [f64],
    acc: &mut [f64],
    phis: &mut [f64],
) {
    let k = if K > 0 { K } else { k_dyn };
    let len = values.len() / k;
    if len == 0 {
        phis.fill(0.0);
        return;
    }
    maxes.fill(0.0);
    for chunk in values.chunks_exact(k) {
        for (m, &y) in maxes.iter_mut().zip(chunk) {
            *m = m.max((in_scale * y).abs());
        }
    }
    acc.fill(0.0);
    let main = (len / 4) * 4;
    for i in 0..len {
        // The scalar kernel's chunks_exact(4) lanes; trailing elements fold
        // into accumulator 0 exactly like its remainder loop. Accumulators
        // are slot-major (`acc[slot*k + l]`) so every stream this loop
        // touches — values, weights and the accumulator row — is a
        // contiguous k-wide window, keeping the exp-heavy body vectorized.
        let slot = if i < main { i % 4 } else { 0 };
        let row = &mut acc[slot * k..slot * k + k];
        let src = &values[i * k..i * k + k];
        let dst = &mut out[i * k..i * k + k];
        for l in 0..k {
            let y = in_scale * src[l];
            let m = maxes[l];
            let e1 = exp_nonpos(y - m);
            let e2 = exp_nonpos(-y - m);
            row[l] += e1 + e2;
            dst[l] = e1 - e2;
        }
    }
    for l in 0..k {
        let sum = (acc[l] + acc[k + l]) + (acc[2 * k + l] + acc[3 * k + l]);
        phis[l] = maxes[l] + sum.ln();
        // Carry the sum for the divide pass in the freed max slot.
        maxes[l] = sum;
    }
    for chunk in out.chunks_exact_mut(k) {
        for (w, &s) in chunk.iter_mut().zip(&*maxes) {
            *w = *w / s * out_scale;
        }
    }
}

/// Reusable lane-major buffers for the blocked multi-demand driver
/// [`almost_route_block`]: one set of edge/node/row buffers with `k`
/// contiguous lanes per element, sized once per (graph, approximator, lane
/// count) shape so the blocked gradient loop allocates nothing in the steady
/// state. A `maxflow::PreparedMaxFlow` session owns these across batched
/// queries.
#[derive(Debug, Clone, Default)]
pub struct BlockScratch {
    /// Working flows, `m × k` lane-major.
    f: Vec<f64>,
    /// Working demands `k_B · b` per lane, `n × k`.
    b_work: Vec<f64>,
    /// Pre-step flow snapshots for adaptive backtracking, `m × k`.
    flow_backup: Vec<f64>,
    /// `C⁻¹ f` lanes, `m × k`.
    scaled_flow: Vec<f64>,
    /// Congestion-term soft-max weights, `m × k`.
    w1: Vec<f64>,
    /// Residual demands `b − Bf`, `n × k`.
    residual: Vec<f64>,
    /// `2α · R(b − Bf)` lanes, `rows × k`; doubles as the price input.
    rows: Vec<f64>,
    /// Demand-term soft-max weights / prices, `rows × k`.
    prices: Vec<f64>,
    /// Node potentials `Rᵀ prices`, `n × k`.
    potentials: Vec<f64>,
    /// Gradient lanes, `m × k`.
    grad: Vec<f64>,
    /// Per-lane `max |y|` (and, transiently, exponential sums), `k`.
    maxes: Vec<f64>,
    /// Per-lane split accumulators, `4k`.
    acc: Vec<f64>,
    /// Per-lane potentials φ = φ₁ + φ₂, `k`.
    phis: Vec<f64>,
    /// Per-lane φ₁ staging, `k`.
    phi1: Vec<f64>,
    /// Lane-major demand packing area for norm evaluations, `n × k`.
    pack: Vec<f64>,
    /// Per-lane `‖R·b‖_∞` results, `k`.
    norms: Vec<f64>,
    /// Node-sized scratch borrowed by the blocked operator evaluations.
    op: OperatorScratch,
}

impl BlockScratch {
    /// Scratch pre-sized for `g`, `r` and `k` lanes (also happens lazily on
    /// first use).
    pub fn for_instance(g: &Graph, r: &CongestionApproximator, k: usize) -> Self {
        let mut scratch = BlockScratch::default();
        scratch.ensure(g, r, k.max(1));
        scratch
    }

    fn ensure(&mut self, g: &Graph, r: &CongestionApproximator, k: usize) {
        let (n, m, rows) = (g.num_nodes(), g.num_edges(), r.num_rows());
        fn fit(buf: &mut Vec<f64>, len: usize) {
            if buf.len() < len {
                buf.resize(len, 0.0);
            }
        }
        fit(&mut self.f, m * k);
        fit(&mut self.b_work, n * k);
        fit(&mut self.flow_backup, m * k);
        fit(&mut self.scaled_flow, m * k);
        fit(&mut self.w1, m * k);
        fit(&mut self.residual, n * k);
        fit(&mut self.rows, rows * k);
        fit(&mut self.prices, rows * k);
        fit(&mut self.potentials, n * k);
        fit(&mut self.grad, m * k);
        fit(&mut self.maxes, k);
        fit(&mut self.acc, 4 * k);
        fit(&mut self.phis, k);
        fit(&mut self.phi1, k);
        fit(&mut self.pack, n * k);
        fit(&mut self.norms, k);
        self.op.ensure_nodes(n * k);
    }

    /// `‖R·b‖_∞` for every demand in one blocked sweep: packs the demands
    /// lane-major, applies `R` once, and folds each lane's rows in row order
    /// (the scalar fold order), leaving the per-lane norms in the returned
    /// slice. Bit-identical per lane to
    /// [`AlmostRouteScratch::congestion_lower_bound`] on that demand.
    ///
    /// # Panics
    ///
    /// Panics if any demand's length does not match the approximator's node
    /// count.
    pub(crate) fn congestion_lower_bounds(
        &mut self,
        g: &Graph,
        r: &CongestionApproximator,
        demands: &[&Demand],
        par: &Parallelism,
    ) -> &[f64] {
        let k = demands.len();
        if k == 0 {
            return &[];
        }
        let n = r.num_nodes();
        self.ensure(g, r, k);
        for (l, b) in demands.iter().enumerate() {
            assert_eq!(b.len(), n, "demand length mismatch");
            for (v, &x) in b.values().iter().enumerate() {
                self.pack[v * k + l] = x;
            }
        }
        let rows_len = r.num_rows() * k;
        r.apply_block_into_par(
            &self.pack[..n * k],
            k,
            &mut self.rows[..rows_len],
            &mut self.op,
            par,
        )
        .expect("packed demands match the approximator");
        let norms = &mut self.norms[..k];
        norms.fill(0.0);
        lane_dispatch!(k, row_abs_max_impl(&self.rows[..rows_len], k, norms));
        &self.norms[..k]
    }
}

/// Per-lane control state of the blocked driver: everything Algorithm 2
/// tracks between iterations for one demand.
struct LaneState {
    /// Index into the caller's demand slice.
    idx: usize,
    total_scale: f64,
    iterations: usize,
    scaling_steps: usize,
    step_scale: f64,
    last_accepted: Option<f64>,
    /// Whether this lane started from a warm flow (enables the scaling jump).
    warm: bool,
    potential: f64,
    hit_cap: bool,
    done: bool,
}

/// Runs Algorithm 2 for `k` demands in lockstep through one set of blocked
/// operator sweeps — the multi-right-hand-side counterpart of
/// [`almost_route_with`].
///
/// Every gradient iteration evaluates the potential and gradient of **all
/// still-active lanes** with a single walk over the tree slots, edge list and
/// soft-max buffers ([`CongestionApproximator::apply_block_into`] and
/// friends), then advances each lane's own 17/16 scaling schedule, step size
/// and termination test independently. Lanes that converge are compacted out,
/// so finished demands stop paying for sweeps.
///
/// The per-lane floating-point sequence replicates the scalar driver exactly:
/// `results[l]` is **byte-for-byte identical** to
/// `almost_route_with(g, r, &demands[l], config, ..)` for every lane, every
/// batch size and every thread count of `config.parallelism`.
///
/// # Panics
///
/// Panics if any demand does not match the graph's node count.
pub fn almost_route_block(
    g: &Graph,
    r: &CongestionApproximator,
    demands: &[Demand],
    config: &AlmostRouteConfig,
    scratch: &mut BlockScratch,
) -> Vec<AlmostRouteResult> {
    let refs: Vec<&Demand> = demands.iter().collect();
    let warms: Vec<Option<&FlowVec>> = vec![None; demands.len()];
    almost_route_block_warm(g, r, &refs, &warms, config, scratch)
}

/// [`almost_route_block`] with an optional warm-start flow per lane — the
/// blocked counterpart of [`almost_route_warm_with`], with the same per-lane
/// byte-identity guarantee.
///
/// # Panics
///
/// Panics if `warms.len() != demands.len()`, if any demand does not match
/// the graph's node count, or if any warm flow does not match the edge count.
pub fn almost_route_block_warm(
    g: &Graph,
    r: &CongestionApproximator,
    demands: &[&Demand],
    warms: &[Option<&FlowVec>],
    config: &AlmostRouteConfig,
    scratch: &mut BlockScratch,
) -> Vec<AlmostRouteResult> {
    let base_norms: Vec<f64> = scratch
        .congestion_lower_bounds(g, r, demands, &config.parallelism)
        .to_vec();
    almost_route_block_with_norms(g, r, demands, warms, &base_norms, config, scratch)
}

/// [`almost_route_block_warm`] with the per-lane `‖R·b‖_∞` already in hand
/// (the routing engine computes it for its own stopping rule; recomputing it
/// here would repeat a full blocked operator sweep for bit-identical values).
pub(crate) fn almost_route_block_with_norms(
    g: &Graph,
    r: &CongestionApproximator,
    demands: &[&Demand],
    warms: &[Option<&FlowVec>],
    base_norms: &[f64],
    config: &AlmostRouteConfig,
    scratch: &mut BlockScratch,
) -> Vec<AlmostRouteResult> {
    assert_eq!(demands.len(), warms.len(), "one warm slot per demand");
    assert_eq!(demands.len(), base_norms.len(), "one base norm per demand");
    let k_total = demands.len();
    let mut results: Vec<Option<AlmostRouteResult>> = (0..k_total).map(|_| None).collect();
    if k_total == 0 {
        return Vec::new();
    }
    for b in demands {
        assert_eq!(b.len(), g.num_nodes(), "demand length mismatch");
    }
    let n = g.num_nodes().max(2) as f64;
    let m = g.num_edges();
    let eps = config.epsilon.clamp(1e-3, 1.0);
    let alpha = config
        .alpha
        .unwrap_or_else(|| r.provable_alpha().clamp(1.0, 6.0))
        .max(1.0);
    let par = &config.parallelism;
    let adaptive = config.adaptive_steps;
    let target = 16.0 * n.ln() / eps;

    // Degenerate lanes (zero demand or edgeless graph) return the zero flow
    // immediately, like the scalar driver.
    let mut lanes: Vec<LaneState> = Vec::with_capacity(k_total);
    for (idx, &base_norm) in base_norms.iter().enumerate() {
        if base_norm <= 0.0 || m == 0 {
            results[idx] = Some(AlmostRouteResult {
                flow: FlowVec::zeros(m),
                iterations: 0,
                scaling_steps: 0,
                final_potential: 0.0,
                hit_iteration_cap: false,
            });
        } else {
            lanes.push(LaneState {
                idx,
                total_scale: target / (2.0 * alpha * base_norm),
                iterations: 0,
                scaling_steps: 0,
                step_scale: 1.0,
                last_accepted: None,
                warm: warms[idx].is_some(),
                potential: 0.0,
                hit_cap: false,
                done: false,
            });
        }
    }

    let mut k = lanes.len();
    scratch.ensure(g, r, k.max(1));
    // Lines 1–2 per lane: working demand `k_B · b` and the starting flow
    // (warm flow in the working scale, zero otherwise). Per-element op
    // sequence matches the scalar `clone()` + `scale(kb)`.
    for (j, lane) in lanes.iter().enumerate() {
        let kb = lane.total_scale;
        for (v, &x) in demands[lane.idx].values().iter().enumerate() {
            scratch.b_work[v * k + j] = x * kb;
        }
        match warms[lane.idx] {
            Some(w) => {
                assert_eq!(w.len(), m, "warm-start flow length mismatch");
                for (e, &x) in w.values().iter().enumerate() {
                    scratch.f[e * k + j] = x * kb;
                }
            }
            None => {
                for e in 0..m {
                    scratch.f[e * k + j] = 0.0;
                }
            }
        }
    }

    // What one round does to one lane's edge- and node-indexed arrays. The
    // decision is made from scalar state (potential, δ, iteration counts)
    // first, so the array updates can run as single fused element-outer
    // passes below — a per-lane strided pass would touch every cache line of
    // the k-wide buffers to update one lane, paying k× the bandwidth of the
    // scalar driver's contiguous loops and forfeiting the blocked win.
    #[derive(Clone, Copy)]
    enum LaneAction {
        /// Adaptive backtrack: restore the lane's flow from its snapshot.
        Restore,
        /// One 17/16 scaling round, preceded by an optional warm-start jump
        /// (two separate multiplies, exactly like the scalar driver).
        Scale { jump: Option<f64> },
        /// Gradient step of this magnitude (snapshotting first when adaptive).
        Step { step: f64 },
        /// Terminated or undecided: leave the lane's arrays alone.
        Hold,
    }

    let capacities = g.capacity_slice();
    let mut actions: Vec<LaneAction> = Vec::with_capacity(k);
    let mut deltas: Vec<f64> = vec![0.0; k];
    while k > 0 {
        potential_and_gradient_block(g, r, k, alpha, scratch, par);
        let mut finished = false;
        actions.clear();
        actions.resize(k, LaneAction::Hold);

        // Backtracking and the scaling schedule need only the potentials;
        // lanes that fall through to the termination test need δ, computed
        // in one fused walk afterwards.
        let mut needs_delta = false;
        for j in 0..k {
            let phi = scratch.phis[j];
            let lane = &mut lanes[j];

            // Backtracking: undo an overshooting adaptive step, like the
            // scalar driver's snapshot restore.
            if adaptive {
                if let Some(prev) = lane.last_accepted {
                    if phi > prev {
                        actions[j] = LaneAction::Restore;
                        lane.step_scale = (lane.step_scale * 0.5).max(1.0 / 1024.0);
                        lane.last_accepted = None;
                        lane.iterations += 1;
                        if lane.iterations >= config.max_iterations {
                            lane.potential = prev;
                            lane.hit_cap = true;
                            lane.done = true;
                            finished = true;
                        }
                        continue;
                    }
                }
            }
            lane.potential = phi;

            // Lines 4–5: the 17/16 scaling schedule, with the warm-start
            // jump on warm lanes (cold lanes never take it, exactly like the
            // scalar driver).
            if phi < target && lane.scaling_steps < 10_000 {
                let mut jump_factor = None;
                if lane.warm && phi.is_finite() && phi > 0.0 {
                    let jump = ((target / phi).ln() / (17.0f64 / 16.0).ln() - 1.0).floor();
                    let remaining = (10_000 - lane.scaling_steps) as f64 - 1.0;
                    let jump = jump.min(remaining).max(0.0) as usize;
                    if jump > 0 {
                        let factor = (17.0f64 / 16.0).powi(jump as i32);
                        jump_factor = Some(factor);
                        lane.total_scale *= factor;
                        lane.scaling_steps += jump;
                    }
                }
                actions[j] = LaneAction::Scale { jump: jump_factor };
                lane.total_scale *= 17.0 / 16.0;
                lane.scaling_steps += 1;
                lane.last_accepted = None;
                continue;
            }
            needs_delta = true;
        }

        // Line 6: δ over each undecided lane's gradient — one walk over the
        // gradient block, each lane accumulating in edge order like the
        // scalar sum.
        if needs_delta {
            for d in deltas[..k].iter_mut() {
                *d = 0.0;
            }
            for (chunk, &cap) in scratch.grad[..m * k].chunks_exact(k).zip(capacities) {
                for (d, &gd) in deltas[..k].iter_mut().zip(chunk) {
                    *d += (cap * gd).abs();
                }
            }
        }
        for j in 0..k {
            if !matches!(actions[j], LaneAction::Hold) || lanes[j].done {
                continue;
            }
            let lane = &mut lanes[j];
            let delta = deltas[j];

            if delta < eps / 4.0 {
                lane.done = true;
                finished = true;
                continue;
            }
            if lane.iterations >= config.max_iterations {
                lane.hit_cap = true;
                lane.done = true;
                finished = true;
                continue;
            }

            // Line 8: the signed capacity step, stretched by the adaptive
            // scale when enabled.
            let step = delta / (1.0 + 4.0 * alpha * alpha) * lane.step_scale;
            if adaptive {
                lane.last_accepted = Some(lane.potential);
                lane.step_scale = (lane.step_scale * 1.25).min(8.0);
            }
            actions[j] = LaneAction::Step { step };
            lane.iterations += 1;
        }

        // One fused pass over the edge-indexed buffers applies every lane's
        // action; lanes own disjoint strides, so per lane the writes are
        // exactly the scalar driver's, in the scalar order.
        let any_edge_work = actions[..k].iter().any(|a| !matches!(a, LaneAction::Hold));
        if any_edge_work {
            for (e, &cap) in capacities.iter().enumerate() {
                let base = e * k;
                for (j, action) in actions[..k].iter().enumerate() {
                    match *action {
                        LaneAction::Restore => {
                            scratch.f[base + j] = scratch.flow_backup[base + j];
                        }
                        LaneAction::Scale { jump } => {
                            if let Some(factor) = jump {
                                scratch.f[base + j] *= factor;
                            }
                            scratch.f[base + j] *= 17.0 / 16.0;
                        }
                        LaneAction::Step { step } => {
                            if adaptive {
                                scratch.flow_backup[base + j] = scratch.f[base + j];
                            }
                            let gd = scratch.grad[base + j];
                            if gd != 0.0 {
                                scratch.f[base + j] += -gd.signum() * cap * step;
                            }
                        }
                        LaneAction::Hold => {}
                    }
                }
            }
        }
        // The scaling lanes' working demands, fused the same way.
        let any_scale = actions[..k]
            .iter()
            .any(|a| matches!(a, LaneAction::Scale { .. }));
        if any_scale {
            for v in 0..g.num_nodes() {
                let base = v * k;
                for (j, action) in actions[..k].iter().enumerate() {
                    if let LaneAction::Scale { jump } = *action {
                        if let Some(factor) = jump {
                            scratch.b_work[base + j] *= factor;
                        }
                        scratch.b_work[base + j] *= 17.0 / 16.0;
                    }
                }
            }
        }

        if finished {
            // Extract finished lanes (lines 10–11: unscale the flow), then
            // compact the surviving lanes so converged demands stop paying
            // for sweeps.
            let keep: Vec<usize> = (0..k).filter(|&j| !lanes[j].done).collect();
            for (j, lane) in lanes.iter().enumerate() {
                if !lane.done {
                    continue;
                }
                let mut flow = FlowVec::zeros(m);
                for (e, x) in flow.values_mut().iter_mut().enumerate() {
                    *x = scratch.f[e * k + j];
                }
                flow.scale(1.0 / lane.total_scale);
                results[lane.idx] = Some(AlmostRouteResult {
                    flow,
                    iterations: lane.iterations,
                    scaling_steps: lane.scaling_steps,
                    final_potential: lane.potential,
                    hit_iteration_cap: lane.hit_cap,
                });
            }
            let new_k = keep.len();
            if new_k > 0 && new_k < k {
                compact_lanes(&mut scratch.f, m, k, &keep);
                compact_lanes(&mut scratch.b_work, g.num_nodes(), k, &keep);
                compact_lanes(&mut scratch.flow_backup, m, k, &keep);
            }
            let mut write = 0;
            for j in 0..k {
                if !lanes[j].done {
                    lanes.swap(write, j);
                    write += 1;
                }
            }
            lanes.truncate(write);
            k = new_k;
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every lane terminated"))
        .collect()
}

/// In-place lane compaction from `old_k` to `keep.len()` lanes over `elems`
/// elements. `keep` must be ascending; every write position `e*new_k + j`
/// is then ≤ its read position `e*old_k + keep[j]`, and writes advance
/// monotonically, so the forward pass never clobbers an unread value.
fn compact_lanes(buf: &mut [f64], elems: usize, old_k: usize, keep: &[usize]) {
    let new_k = keep.len();
    for e in 0..elems {
        for (j, &old_j) in keep.iter().enumerate() {
            buf[e * new_k + j] = buf[e * old_k + old_j];
        }
    }
}

/// Blocked counterpart of [`potential_and_gradient_scratch`]: evaluates
/// `φ(f)` of every lane into `scratch.phis[..k]` and the gradients into
/// `scratch.grad` (lane-major), walking the edge list, tree slots and
/// soft-max buffers once for all `k` lanes. Element-outer / lane-inner
/// throughout, so each lane's floating-point sequence is the scalar one.
fn potential_and_gradient_block(
    g: &Graph,
    r: &CongestionApproximator,
    k: usize,
    alpha: f64,
    scratch: &mut BlockScratch,
    par: &Parallelism,
) {
    let m = g.num_edges();
    let n = g.num_nodes();
    let rows_len = r.num_rows() * k;

    // φ1 = smax(C⁻¹ f) per lane.
    lane_dispatch!(
        k,
        scaled_flow_block_impl(g, &scratch.f, k, &mut scratch.scaled_flow)
    );
    smax_and_weights_block_into(
        &scratch.scaled_flow[..m * k],
        k,
        1.0,
        1.0,
        &mut scratch.w1[..m * k],
        &mut scratch.maxes[..k],
        &mut scratch.acc[..4 * k],
        &mut scratch.phi1[..k],
    );

    // φ2 = smax(2α R (b − Bf)) per lane.
    flowgraph::residual_block_into(
        g,
        &scratch.b_work[..n * k],
        &scratch.f[..m * k],
        k,
        &mut scratch.residual[..n * k],
    );
    r.apply_block_into_par(
        &scratch.residual[..n * k],
        k,
        &mut scratch.rows[..rows_len],
        &mut scratch.op,
        par,
    )
    .expect("scratch residual matches the approximator");
    // The 2α pre-scale of the rows and the 2α post-scale of the prices are
    // fused into the soft-max sweeps: same multiplications in the same
    // order, two fewer full passes over the `rows × k` block.
    smax_and_weights_block_into(
        &scratch.rows[..rows_len],
        k,
        2.0 * alpha,
        2.0 * alpha,
        &mut scratch.prices[..rows_len],
        &mut scratch.maxes[..k],
        &mut scratch.acc[..4 * k],
        &mut scratch.phis[..k],
    );
    r.apply_transpose_block_into_par(
        &scratch.prices[..rows_len],
        k,
        &mut scratch.potentials[..n * k],
        &mut scratch.op,
        par,
    )
    .expect("scratch prices match the approximator rows");

    lane_dispatch!(
        k,
        gradient_block_impl(g, &scratch.w1, &scratch.potentials, k, &mut scratch.grad)
    );
    for l in 0..k {
        scratch.phis[l] += scratch.phi1[l];
    }
}

/// Per-lane `max |rows[i*k + l]|` folds in row order, with a monomorphized
/// lane count (see [`lane_dispatch!`]).
#[inline(always)]
fn row_abs_max_impl<const K: usize>(rows: &[f64], k_dyn: usize, norms: &mut [f64]) {
    let k = if K > 0 { K } else { k_dyn };
    for chunk in rows.chunks_exact(k) {
        for (nm, &y) in norms.iter_mut().zip(chunk) {
            *nm = nm.max(y.abs());
        }
    }
}

/// `scaled_flow[e*k + l] = f[e*k + l] / cap(e)` with a monomorphized lane
/// count (see [`lane_dispatch!`]).
#[inline(always)]
fn scaled_flow_block_impl<const K: usize>(g: &Graph, f: &[f64], k_dyn: usize, out: &mut [f64]) {
    let k = if K > 0 { K } else { k_dyn };
    for ((out_chunk, f_chunk), &cap) in out
        .chunks_exact_mut(k)
        .zip(f.chunks_exact(k))
        .zip(g.capacity_slice())
    {
        for (o, &x) in out_chunk.iter_mut().zip(f_chunk) {
            *o = x / cap;
        }
    }
}

/// `grad[e*k + l] = w1[e*k + l]/cap(e) + π[tail] − π[head]` with a
/// monomorphized lane count (see [`lane_dispatch!`]).
#[inline(always)]
fn gradient_block_impl<const K: usize>(
    g: &Graph,
    w1: &[f64],
    potentials: &[f64],
    k_dyn: usize,
    grad: &mut [f64],
) {
    let k = if K > 0 { K } else { k_dyn };
    for (id, e) in g.edges() {
        let cap = g.capacity(id);
        let base = id.index() * k;
        let w = &w1[base..base + k];
        let gr = &mut grad[base..base + k];
        let pt = &potentials[e.tail.index() * k..][..k];
        let ph = &potentials[e.head.index() * k..][..k];
        for l in 0..k {
            let g1 = w[l] / cap;
            let g2 = pt[l] - ph[l];
            gr[l] = g1 + g2;
        }
    }
}

/// Evaluates `φ(f)` and `∂φ/∂f` for the working demand `b`.
///
/// The second term's gradient is computed through node potentials, exactly as
/// in §9.1: prices on the tree cuts (one per row of `R`) are pushed down the
/// trees by `Rᵀ`, and `∂φ₂/∂f_e = π_u − π_v` for the edge `e = (u, v)`.
pub fn potential_and_gradient(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    f: &FlowVec,
    alpha: f64,
) -> (f64, Vec<f64>) {
    let mut scratch = AlmostRouteScratch::for_instance(g, r);
    let phi =
        potential_and_gradient_scratch(g, r, b, f, alpha, &mut scratch, &Parallelism::sequential());
    (phi, scratch.grad)
}

/// Evaluates `φ(f)` into the return value and `∂φ/∂f` into `scratch.grad`,
/// touching no heap memory beyond the pre-sized scratch buffers (at
/// `Parallelism::sequential()`; parallel evaluations additionally use the
/// scratch's tree-major workspaces, warmed on first use).
fn potential_and_gradient_scratch(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    f: &FlowVec,
    alpha: f64,
    scratch: &mut AlmostRouteScratch,
    par: &Parallelism,
) -> f64 {
    // φ1 = smax(C⁻¹ f), weights fused into the same exponential pass.
    for (x, e) in scratch.scaled_flow.iter_mut().zip(g.edge_ids()) {
        *x = f.get(e) / g.capacity(e);
    }
    let phi1 = smax_and_weights_into(&scratch.scaled_flow, &mut scratch.w1);

    // φ2 = smax(2α R (b − Bf)).
    b.residual_into(g, f, &mut scratch.residual);
    r.apply_into_par(&scratch.residual, &mut scratch.rows, &mut scratch.op, par)
        .expect("scratch demand matches the approximator");
    // Doubling is exact in IEEE-754, so `y * (2α)` rounds identically to the
    // original `2α · y` evaluation order.
    for y in scratch.rows.iter_mut() {
        *y *= 2.0 * alpha;
    }
    let phi2 = smax_and_weights_into(&scratch.rows, &mut scratch.prices);
    // Prices per row: q_i · 2α (the 1/cap_i factor is applied inside Rᵀ).
    for q in scratch.prices.iter_mut() {
        *q *= 2.0 * alpha;
    }
    r.apply_transpose_into_par(
        &scratch.prices,
        &mut scratch.potentials,
        &mut scratch.op,
        par,
    )
    .expect("scratch prices match the approximator rows");

    for (id, e) in g.edges() {
        let g1 = scratch.w1[id.index()] / g.capacity(id);
        // Increasing f_e moves one unit of excess from tail to head, so the
        // residual (b − Bf) decreases at the head and increases at the tail;
        // differentiating the second soft-max yields π_tail − π_head.
        let g2 = scratch.potentials[e.tail.index()] - scratch.potentials[e.head.index()];
        scratch.grad[id.index()] = g1 + g2;
    }
    phi1 + phi2
}

#[cfg(test)]
mod tests {
    use super::*;
    use capprox::RackeConfig;
    use flowgraph::{gen, NodeId};

    fn approximator(g: &Graph, trees: usize) -> CongestionApproximator {
        CongestionApproximator::build(g, &RackeConfig::default().with_num_trees(trees)).unwrap()
    }

    #[test]
    fn smax_matches_direct_computation() {
        let y = [0.5, -1.0, 2.0];
        let direct: f64 = y
            .iter()
            .map(|&v: &f64| v.exp() + (-v).exp())
            .sum::<f64>()
            .ln();
        assert!((smax(&y) - direct).abs() < 1e-12);
        assert_eq!(smax(&[]), 0.0);
        // Stability for large values.
        let big = [500.0, -600.0];
        assert!(smax(&big).is_finite());
        assert!((smax(&big) - 600.0).abs() < 1.0);
    }

    #[test]
    fn smax_upper_bounds_max() {
        let y: [f64; 4] = [0.3, -2.5, 1.1, 0.0];
        let max_abs = y.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let s = smax(&y);
        assert!(s >= max_abs);
        assert!(s <= max_abs + (2.0 * y.len() as f64).ln());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let g = gen::grid(3, 3, 1.0);
        let r = approximator(&g, 3);
        let b = Demand::st(&g, NodeId(0), NodeId(8), 1.0);
        let mut f = FlowVec::zeros(g.num_edges());
        // A non-trivial starting point.
        for e in g.edge_ids() {
            f.set(e, 0.1 * (e.index() as f64 % 3.0) - 0.1);
        }
        let alpha = 4.0;
        let (phi, grad) = potential_and_gradient(&g, &r, &b, &f, alpha);
        let h = 1e-6;
        for e in g.edge_ids() {
            let mut f2 = f.clone();
            f2.add(e, h);
            let (phi2, _) = potential_and_gradient(&g, &r, &b, &f2, alpha);
            let numeric = (phi2 - phi) / h;
            assert!(
                (numeric - grad[e.index()]).abs() < 1e-3 * (1.0 + numeric.abs()),
                "gradient mismatch at edge {e}: analytic {} vs numeric {numeric}",
                grad[e.index()]
            );
        }
    }

    #[test]
    fn almost_route_reduces_residual() {
        let g = gen::grid(4, 4, 1.0);
        let r = approximator(&g, 6);
        let b = Demand::st(&g, NodeId(0), NodeId(15), 1.0);
        let result = almost_route(&g, &r, &b, &AlmostRouteConfig::default());
        assert!(result.iterations > 0);
        // The residual demand (measured through the approximator) must be
        // substantially smaller than the original demand.
        let residual = b.residual(&g, &result.flow);
        let before = r.congestion_lower_bound(&b);
        let after = r.congestion_lower_bound(&residual);
        assert!(
            after < 0.7 * before,
            "residual congestion {after} not sufficiently below {before}"
        );
    }

    #[test]
    fn almost_route_zero_demand_is_zero_flow() {
        let g = gen::path(5, 1.0);
        let r = approximator(&g, 2);
        let b = Demand::zeros(5);
        let result = almost_route(&g, &r, &b, &AlmostRouteConfig::default());
        assert_eq!(result.iterations, 0);
        assert!(result.flow.values().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn tighter_epsilon_needs_more_iterations() {
        let g = gen::grid(4, 4, 1.0);
        let r = approximator(&g, 6);
        let b = Demand::st(&g, NodeId(0), NodeId(15), 1.0);
        let loose = almost_route(
            &g,
            &r,
            &b,
            &AlmostRouteConfig {
                epsilon: 0.8,
                ..Default::default()
            },
        );
        let tight = almost_route(
            &g,
            &r,
            &b,
            &AlmostRouteConfig {
                epsilon: 0.2,
                ..Default::default()
            },
        );
        assert!(
            tight.iterations >= loose.iterations,
            "tight ε should need at least as many iterations ({} vs {})",
            tight.iterations,
            loose.iterations
        );
    }

    #[test]
    fn iteration_cap_is_respected() {
        let g = gen::grid(5, 5, 1.0);
        let r = approximator(&g, 4);
        let b = Demand::st(&g, NodeId(0), NodeId(24), 1.0);
        let result = almost_route(
            &g,
            &r,
            &b,
            &AlmostRouteConfig {
                epsilon: 0.05,
                alpha: Some(8.0),
                max_iterations: 3,
                ..Default::default()
            },
        );
        assert!(result.iterations <= 3);
        assert!(result.hit_iteration_cap);
    }

    fn assert_results_bit_identical(blocked: &AlmostRouteResult, scalar: &AlmostRouteResult) {
        assert_eq!(blocked.iterations, scalar.iterations);
        assert_eq!(blocked.scaling_steps, scalar.scaling_steps);
        assert_eq!(blocked.hit_iteration_cap, scalar.hit_iteration_cap);
        assert_eq!(
            blocked.final_potential.to_bits(),
            scalar.final_potential.to_bits(),
            "final potential differs"
        );
        for (e, (b, s)) in blocked
            .flow
            .values()
            .iter()
            .zip(scalar.flow.values())
            .enumerate()
        {
            assert_eq!(b.to_bits(), s.to_bits(), "flow differs at edge {e}");
        }
    }

    #[test]
    fn blocked_driver_matches_scalar_lanes_byte_for_byte() {
        let g = gen::grid(4, 4, 1.0);
        let r = approximator(&g, 4);
        // Demands with different convergence speeds (exercises compaction)
        // plus a zero demand (exercises the degenerate lane path).
        let pairs = [(0, 15), (3, 12), (5, 10), (1, 1), (0, 15), (2, 13), (4, 11)];
        let demands: Vec<Demand> = pairs
            .iter()
            .map(|&(s, t)| {
                let amount = if s == t { 0.0 } else { 1.0 + 0.25 * s as f64 };
                Demand::st(&g, NodeId(s), NodeId(t), amount)
            })
            .collect();
        let mut scalar_scratch = AlmostRouteScratch::for_instance(&g, &r);
        let mut block_scratch = BlockScratch::default();
        for adaptive in [false, true] {
            for warm_on in [false, true] {
                let config = AlmostRouteConfig::default()
                    .with_epsilon(0.4)
                    .with_max_iterations(300)
                    .with_adaptive_steps(adaptive);
                // Warm flows: each demand's own cold answer (a realistic
                // serving warm start).
                let warm_flows: Vec<FlowVec> = demands
                    .iter()
                    .map(|b| almost_route_with(&g, &r, b, &config, &mut scalar_scratch).flow)
                    .collect();
                for k in [1usize, 2, 7] {
                    let refs: Vec<&Demand> = demands.iter().take(k).collect();
                    let warms: Vec<Option<&FlowVec>> =
                        (0..k).map(|l| warm_on.then(|| &warm_flows[l])).collect();
                    let blocked =
                        almost_route_block_warm(&g, &r, &refs, &warms, &config, &mut block_scratch);
                    assert_eq!(blocked.len(), k);
                    for (l, blocked_result) in blocked.iter().enumerate() {
                        let scalar = almost_route_warm_with(
                            &g,
                            &r,
                            refs[l],
                            &config,
                            &mut scalar_scratch,
                            warms[l],
                        );
                        assert_results_bit_identical(blocked_result, &scalar);
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_driver_is_thread_count_invariant() {
        let g = gen::grid(5, 5, 1.0);
        let r = approximator(&g, 4);
        let demands: Vec<Demand> = [(0, 24), (4, 20), (2, 22)]
            .iter()
            .map(|&(s, t)| Demand::st(&g, NodeId(s), NodeId(t), 1.5))
            .collect();
        let seq_config = AlmostRouteConfig::default()
            .with_epsilon(0.4)
            .with_max_iterations(200);
        let mut scratch = BlockScratch::default();
        let baseline = almost_route_block(&g, &r, &demands, &seq_config, &mut scratch);
        for threads in [2, 4] {
            let par_config = seq_config
                .clone()
                .with_parallelism(Parallelism::with_threads(threads));
            let mut par_scratch = BlockScratch::default();
            let par_results = almost_route_block(&g, &r, &demands, &par_config, &mut par_scratch);
            for (b, s) in par_results.iter().zip(&baseline) {
                assert_results_bit_identical(b, s);
            }
        }
    }

    #[test]
    fn blocked_driver_handles_empty_and_degenerate_batches() {
        let g = gen::grid(3, 3, 1.0);
        let r = approximator(&g, 3);
        let empty: Vec<Demand> = Vec::new();
        let mut scratch = BlockScratch::for_instance(&g, &r, 4);
        assert!(
            almost_route_block(&g, &r, &empty, &AlmostRouteConfig::default(), &mut scratch)
                .is_empty()
        );
        // An all-zero batch: every lane takes the degenerate path.
        let zeros = vec![Demand::st(&g, NodeId(0), NodeId(8), 0.0); 3];
        let results =
            almost_route_block(&g, &r, &zeros, &AlmostRouteConfig::default(), &mut scratch);
        for result in &results {
            assert_eq!(result.iterations, 0);
            assert!(result.flow.values().iter().all(|&x| x == 0.0));
        }
    }
}
