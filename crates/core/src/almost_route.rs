//! Sherman's `AlmostRoute` gradient descent (paper §9.1, Algorithm 2).
//!
//! Given a demand vector `b` and a congestion approximator `R`, the routine
//! minimizes the smoothed potential
//!
//! ```text
//! φ(f) = smax(C⁻¹ f) + smax(2α · R(b − Bf))
//! ```
//!
//! where `smax(y) = ln Σ_i (e^{y_i} + e^{-y_i})` is the soft-max. The first
//! term penalizes edge congestion, the second penalizes unrouted demand as
//! seen through the cuts of the approximator. Each iteration takes a signed
//! step proportional to the edge capacity, exactly as in Algorithm 2; the
//! result is a flow that approximately routes `b` with near-optimal
//! congestion, leaving a small residual that the caller repairs over a
//! spanning tree (Algorithm 1).

use capprox::{CongestionApproximator, OperatorScratch};
use flowgraph::{Demand, FlowVec, Graph};
use parallel::Parallelism;
use serde::{Deserialize, Serialize};

/// Configuration of the gradient descent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlmostRouteConfig {
    /// Target accuracy ε of the routing step.
    pub epsilon: f64,
    /// The approximation quality α assumed for the congestion approximator.
    /// `None` uses the approximator's provable bound.
    pub alpha: Option<f64>,
    /// Hard cap on the number of gradient iterations.
    pub max_iterations: usize,
    /// Worker pool for the per-iteration operator evaluations (`R·b`, `Rᵀ·y`
    /// fan per-tree aggregations across threads). Purely a performance knob:
    /// results are byte-identical to sequential for any thread count.
    /// Machine-specific, so never serialized (deserialized configs run
    /// sequentially).
    #[serde(skip, default)]
    pub parallelism: Parallelism,
}

impl Default for AlmostRouteConfig {
    fn default() -> Self {
        AlmostRouteConfig {
            epsilon: 0.5,
            alpha: None,
            max_iterations: 20_000,
            parallelism: Parallelism::sequential(),
        }
    }
}

impl AlmostRouteConfig {
    /// Replaces the target accuracy ε.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Overrides the approximator quality α assumed by the descent
    /// (`None` restores the provable bound).
    #[must_use]
    pub fn with_alpha(mut self, alpha: Option<f64>) -> Self {
        self.alpha = alpha;
        self
    }

    /// Replaces the hard cap on gradient iterations.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Replaces the worker pool used for the operator evaluations.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

/// Reusable buffers for the gradient descent: everything the inner loop
/// needs, sized once per (graph, approximator) pair, so that the steady-state
/// iteration allocates nothing on the heap.
///
/// A [`crate::PreparedMaxFlow`] session owns one of these across queries; the
/// free-function wrappers allocate a fresh one per call.
#[derive(Debug, Clone, Default)]
pub struct AlmostRouteScratch {
    /// `C⁻¹ f`, one entry per edge.
    scaled_flow: Vec<f64>,
    /// Soft-max weights of the congestion term, one entry per edge.
    w1: Vec<f64>,
    /// Residual demand `b − Bf`, one entry per node.
    residual: Demand,
    /// `R (b − Bf)` scaled by 2α, one entry per approximator row; doubles as
    /// the price vector after the weight computation.
    rows: Vec<f64>,
    /// Soft-max weights / prices of the demand term, one entry per row.
    prices: Vec<f64>,
    /// Node potentials `π = Rᵀ prices`.
    potentials: Vec<f64>,
    /// Gradient `∂φ/∂f`, one entry per edge.
    grad: Vec<f64>,
    /// Node-sized scratch borrowed by the operator evaluations.
    op: OperatorScratch,
}

impl AlmostRouteScratch {
    /// Scratch pre-sized for `g` and `r` (also happens lazily on first use).
    pub fn for_instance(g: &Graph, r: &CongestionApproximator) -> Self {
        let mut scratch = AlmostRouteScratch::default();
        scratch.ensure(g, r);
        scratch
    }

    fn ensure(&mut self, g: &Graph, r: &CongestionApproximator) {
        let (n, m, rows) = (g.num_nodes(), g.num_edges(), r.num_rows());
        fn fit(buf: &mut Vec<f64>, len: usize) {
            if buf.len() != len {
                buf.resize(len, 0.0);
            }
        }
        fit(&mut self.scaled_flow, m);
        fit(&mut self.w1, m);
        fit(&mut self.grad, m);
        fit(&mut self.rows, rows);
        fit(&mut self.prices, rows);
        fit(&mut self.potentials, n);
        if self.residual.len() != n {
            self.residual = Demand::zeros(n);
        }
        self.op.ensure_nodes(n);
    }

    /// `‖R·b‖_∞` evaluated through the scratch buffers — the allocation-free
    /// counterpart of [`CongestionApproximator::congestion_lower_bound`],
    /// used at the phase boundaries of a session query. Deliberately
    /// sequential: phase-boundary norm checks run once per phase, not once
    /// per iteration, so they are off the hot path the parallel operators
    /// accelerate.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the approximator's node count.
    pub fn congestion_lower_bound(&mut self, r: &CongestionApproximator, b: &Demand) -> f64 {
        if self.rows.len() != r.num_rows() {
            self.rows.resize(r.num_rows(), 0.0);
        }
        self.op.ensure_nodes(r.num_nodes());
        r.apply_into(b, &mut self.rows, &mut self.op)
            .expect("demand length mismatch");
        self.rows.iter().map(|x| x.abs()).fold(0.0, f64::max)
    }
}

/// Outcome of one `AlmostRoute` call.
#[derive(Debug, Clone)]
pub struct AlmostRouteResult {
    /// The computed flow (in the *original* demand scale).
    pub flow: FlowVec,
    /// Number of gradient iterations performed.
    pub iterations: usize,
    /// Number of potential-rescaling steps (the `17/16` loop of Algorithm 2).
    pub scaling_steps: usize,
    /// Final value of the potential (in the working scale).
    pub final_potential: f64,
    /// Whether the iteration cap was hit before `δ < ε/4`.
    pub hit_iteration_cap: bool,
}

/// Numerically stable soft-max `ln Σ_i (e^{y_i} + e^{-y_i})`.
pub fn smax(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = values.iter().fold(0.0f64, |acc, &y| acc.max(y.abs()));
    let sum: f64 = values.iter().map(|&y| (y - m).exp() + (-y - m).exp()).sum();
    m + sum.ln()
}

/// The normalized soft-max gradient weights
/// `(e^{y_i} − e^{-y_i}) / Σ_j (e^{y_j} + e^{-y_j})`, computed stably given
/// `smax_value = smax(values)`.
pub fn smax_weights(values: &[f64], smax_value: f64) -> Vec<f64> {
    let mut out = vec![0.0; values.len()];
    smax_weights_into(values, smax_value, &mut out);
    out
}

/// Allocation-free form of [`smax_weights`]: writes the weights into `out`.
///
/// # Panics
///
/// Panics if `out.len() != values.len()`.
pub fn smax_weights_into(values: &[f64], smax_value: f64, out: &mut [f64]) {
    assert_eq!(out.len(), values.len(), "weight buffer length mismatch");
    for (w, &y) in out.iter_mut().zip(values) {
        *w = (y - smax_value).exp() - (-y - smax_value).exp();
    }
}

/// Runs Algorithm 2 for the demand `b` on graph `g` with congestion
/// approximator `r`.
///
/// The returned flow is expressed in the scale of the input demand; it
/// approximately satisfies `Bf ≈ b` with near-optimal congestion. The
/// residual `b − Bf` is small relative to `‖b‖` and is intended to be routed
/// over a spanning tree by the caller (Algorithm 1, steps 5–6).
///
/// # Panics
///
/// Panics if `b` does not match the graph's node count.
pub fn almost_route(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    config: &AlmostRouteConfig,
) -> AlmostRouteResult {
    let mut scratch = AlmostRouteScratch::default();
    almost_route_with(g, r, b, config, &mut scratch)
}

/// [`almost_route`] with caller-owned scratch buffers: after the buffers are
/// warm (first call per instance shape), the gradient loop performs zero heap
/// allocations per iteration. This is the entry point the
/// [`crate::PreparedMaxFlow`] session uses for every query.
///
/// # Panics
///
/// Panics if `b` does not match the graph's node count.
pub fn almost_route_with(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    config: &AlmostRouteConfig,
    scratch: &mut AlmostRouteScratch,
) -> AlmostRouteResult {
    assert_eq!(b.len(), g.num_nodes(), "demand length mismatch");
    scratch.ensure(g, r);
    let n = g.num_nodes().max(2) as f64;
    let m = g.num_edges();
    let eps = config.epsilon.clamp(1e-3, 1.0);
    // Practical default: the provable bound clamped to a small constant.
    // Sherman's analysis wants a valid upper bound on the approximator
    // quality, but large α values slow the descent quadratically; the
    // top-level solver certifies the final quality independently (the
    // value/upper-bound bracket), so a smaller working α is safe and the
    // experiments report the measured quality. Pass `alpha` explicitly to
    // use the theoretical schedule.
    let alpha = config
        .alpha
        .unwrap_or_else(|| r.provable_alpha().clamp(1.0, 6.0))
        .max(1.0);

    // Degenerate cases: zero demand or an edgeless graph.
    let base_norm = scratch.congestion_lower_bound(r, b);
    if base_norm <= 0.0 || m == 0 {
        return AlmostRouteResult {
            flow: FlowVec::zeros(m),
            iterations: 0,
            scaling_steps: 0,
            final_potential: 0.0,
            hit_iteration_cap: false,
        };
    }

    // Line 1 of Algorithm 2: scale the demand so that the congestion term of
    // the potential starts at Θ(ε⁻¹ log n).
    let target = 16.0 * n.ln() / eps;
    let kb = target / (2.0 * alpha * base_norm);
    let mut b_work = b.clone();
    b_work.scale(kb);
    let mut total_scale = kb;

    let mut f = FlowVec::zeros(m);
    let mut iterations = 0usize;
    let mut scaling_steps = 0usize;
    #[allow(unused_assignments)]
    let mut potential = 0.0;
    let mut hit_cap = false;

    loop {
        // Evaluate the potential and its gradient into the scratch buffers.
        let phi =
            potential_and_gradient_scratch(g, r, &b_work, &f, alpha, scratch, &config.parallelism);
        potential = phi;

        // Lines 4–5: while φ(f) < 16 ε⁻¹ log n, scale f and b up by 17/16.
        if phi < target && scaling_steps < 10_000 {
            f.scale(17.0 / 16.0);
            b_work.scale(17.0 / 16.0);
            total_scale *= 17.0 / 16.0;
            scaling_steps += 1;
            continue;
        }

        // Line 6: δ = Σ_e |cap(e) · ∂φ/∂f_e|.
        let delta: f64 = g
            .edge_ids()
            .map(|e| (g.capacity(e) * scratch.grad[e.index()]).abs())
            .sum();

        if delta < eps / 4.0 {
            break;
        }
        if iterations >= config.max_iterations {
            hit_cap = true;
            break;
        }

        // Line 8: f_e ← f_e − sgn(∂φ/∂f_e) · cap(e) · δ / (1 + 4α²).
        let step = delta / (1.0 + 4.0 * alpha * alpha);
        for e in g.edge_ids() {
            let gd = scratch.grad[e.index()];
            if gd != 0.0 {
                f.add(e, -gd.signum() * g.capacity(e) * step);
            }
        }
        iterations += 1;
    }

    // Lines 10–11: undo the scaling so the flow matches the original demand.
    f.scale(1.0 / total_scale);
    AlmostRouteResult {
        flow: f,
        iterations,
        scaling_steps,
        final_potential: potential,
        hit_iteration_cap: hit_cap,
    }
}

/// Evaluates `φ(f)` and `∂φ/∂f` for the working demand `b`.
///
/// The second term's gradient is computed through node potentials, exactly as
/// in §9.1: prices on the tree cuts (one per row of `R`) are pushed down the
/// trees by `Rᵀ`, and `∂φ₂/∂f_e = π_u − π_v` for the edge `e = (u, v)`.
pub fn potential_and_gradient(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    f: &FlowVec,
    alpha: f64,
) -> (f64, Vec<f64>) {
    let mut scratch = AlmostRouteScratch::for_instance(g, r);
    let phi =
        potential_and_gradient_scratch(g, r, b, f, alpha, &mut scratch, &Parallelism::sequential());
    (phi, scratch.grad)
}

/// Evaluates `φ(f)` into the return value and `∂φ/∂f` into `scratch.grad`,
/// touching no heap memory beyond the pre-sized scratch buffers (at
/// `Parallelism::sequential()`; parallel evaluations additionally use the
/// scratch's tree-major workspaces, warmed on first use).
fn potential_and_gradient_scratch(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    f: &FlowVec,
    alpha: f64,
    scratch: &mut AlmostRouteScratch,
    par: &Parallelism,
) -> f64 {
    // φ1 = smax(C⁻¹ f).
    for (x, e) in scratch.scaled_flow.iter_mut().zip(g.edge_ids()) {
        *x = f.get(e) / g.capacity(e);
    }
    let phi1 = smax(&scratch.scaled_flow);
    smax_weights_into(&scratch.scaled_flow, phi1, &mut scratch.w1);

    // φ2 = smax(2α R (b − Bf)).
    b.residual_into(g, f, &mut scratch.residual);
    r.apply_into_par(&scratch.residual, &mut scratch.rows, &mut scratch.op, par)
        .expect("scratch demand matches the approximator");
    // Doubling is exact in IEEE-754, so `y * (2α)` rounds identically to the
    // original `2α · y` evaluation order.
    for y in scratch.rows.iter_mut() {
        *y *= 2.0 * alpha;
    }
    let phi2 = smax(&scratch.rows);
    smax_weights_into(&scratch.rows, phi2, &mut scratch.prices);
    // Prices per row: q_i · 2α (the 1/cap_i factor is applied inside Rᵀ).
    // `q * 2.0` is exact in IEEE-754, so the compound form rounds identically
    // to the original `q * 2.0 * alpha`.
    for q in scratch.prices.iter_mut() {
        *q *= 2.0 * alpha;
    }
    r.apply_transpose_into_par(
        &scratch.prices,
        &mut scratch.potentials,
        &mut scratch.op,
        par,
    )
    .expect("scratch prices match the approximator rows");

    for (id, e) in g.edges() {
        let g1 = scratch.w1[id.index()] / g.capacity(id);
        // Increasing f_e moves one unit of excess from tail to head, so the
        // residual (b − Bf) decreases at the head and increases at the tail;
        // differentiating the second soft-max yields π_tail − π_head.
        let g2 = scratch.potentials[e.tail.index()] - scratch.potentials[e.head.index()];
        scratch.grad[id.index()] = g1 + g2;
    }
    phi1 + phi2
}

#[cfg(test)]
mod tests {
    use super::*;
    use capprox::RackeConfig;
    use flowgraph::{gen, NodeId};

    fn approximator(g: &Graph, trees: usize) -> CongestionApproximator {
        CongestionApproximator::build(g, &RackeConfig::default().with_num_trees(trees)).unwrap()
    }

    #[test]
    fn smax_matches_direct_computation() {
        let y = [0.5, -1.0, 2.0];
        let direct: f64 = y
            .iter()
            .map(|&v: &f64| v.exp() + (-v).exp())
            .sum::<f64>()
            .ln();
        assert!((smax(&y) - direct).abs() < 1e-12);
        assert_eq!(smax(&[]), 0.0);
        // Stability for large values.
        let big = [500.0, -600.0];
        assert!(smax(&big).is_finite());
        assert!((smax(&big) - 600.0).abs() < 1.0);
    }

    #[test]
    fn smax_upper_bounds_max() {
        let y: [f64; 4] = [0.3, -2.5, 1.1, 0.0];
        let max_abs = y.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let s = smax(&y);
        assert!(s >= max_abs);
        assert!(s <= max_abs + (2.0 * y.len() as f64).ln());
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let g = gen::grid(3, 3, 1.0);
        let r = approximator(&g, 3);
        let b = Demand::st(&g, NodeId(0), NodeId(8), 1.0);
        let mut f = FlowVec::zeros(g.num_edges());
        // A non-trivial starting point.
        for e in g.edge_ids() {
            f.set(e, 0.1 * (e.index() as f64 % 3.0) - 0.1);
        }
        let alpha = 4.0;
        let (phi, grad) = potential_and_gradient(&g, &r, &b, &f, alpha);
        let h = 1e-6;
        for e in g.edge_ids() {
            let mut f2 = f.clone();
            f2.add(e, h);
            let (phi2, _) = potential_and_gradient(&g, &r, &b, &f2, alpha);
            let numeric = (phi2 - phi) / h;
            assert!(
                (numeric - grad[e.index()]).abs() < 1e-3 * (1.0 + numeric.abs()),
                "gradient mismatch at edge {e}: analytic {} vs numeric {numeric}",
                grad[e.index()]
            );
        }
    }

    #[test]
    fn almost_route_reduces_residual() {
        let g = gen::grid(4, 4, 1.0);
        let r = approximator(&g, 6);
        let b = Demand::st(&g, NodeId(0), NodeId(15), 1.0);
        let result = almost_route(&g, &r, &b, &AlmostRouteConfig::default());
        assert!(result.iterations > 0);
        // The residual demand (measured through the approximator) must be
        // substantially smaller than the original demand.
        let residual = b.residual(&g, &result.flow);
        let before = r.congestion_lower_bound(&b);
        let after = r.congestion_lower_bound(&residual);
        assert!(
            after < 0.7 * before,
            "residual congestion {after} not sufficiently below {before}"
        );
    }

    #[test]
    fn almost_route_zero_demand_is_zero_flow() {
        let g = gen::path(5, 1.0);
        let r = approximator(&g, 2);
        let b = Demand::zeros(5);
        let result = almost_route(&g, &r, &b, &AlmostRouteConfig::default());
        assert_eq!(result.iterations, 0);
        assert!(result.flow.values().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn tighter_epsilon_needs_more_iterations() {
        let g = gen::grid(4, 4, 1.0);
        let r = approximator(&g, 6);
        let b = Demand::st(&g, NodeId(0), NodeId(15), 1.0);
        let loose = almost_route(
            &g,
            &r,
            &b,
            &AlmostRouteConfig {
                epsilon: 0.8,
                ..Default::default()
            },
        );
        let tight = almost_route(
            &g,
            &r,
            &b,
            &AlmostRouteConfig {
                epsilon: 0.2,
                ..Default::default()
            },
        );
        assert!(
            tight.iterations >= loose.iterations,
            "tight ε should need at least as many iterations ({} vs {})",
            tight.iterations,
            loose.iterations
        );
    }

    #[test]
    fn iteration_cap_is_respected() {
        let g = gen::grid(5, 5, 1.0);
        let r = approximator(&g, 4);
        let b = Demand::st(&g, NodeId(0), NodeId(24), 1.0);
        let result = almost_route(
            &g,
            &r,
            &b,
            &AlmostRouteConfig {
                epsilon: 0.05,
                alpha: Some(8.0),
                max_iterations: 3,
                ..Default::default()
            },
        );
        assert!(result.iterations <= 3);
        assert!(result.hit_iteration_cap);
    }
}
