//! Near-optimal distributed maximum flow — the primary contribution of
//! Ghaffari, Karrenbauer, Kuhn, Lenzen and Patt-Shamir,
//! *Near-Optimal Distributed Maximum Flow* (PODC 2015).
//!
//! The crate computes `(1+ε)`-approximate maximum s–t flows on undirected
//! capacitated graphs using Sherman's congestion-minimization framework over
//! tree-based congestion approximators, and accounts the CONGEST-model round
//! complexity of the distributed execution described in the paper
//! (`(D + √n)·n^{o(1)}·ε^{-3}` rounds, Theorem 1.1).
//!
//! * [`session`] — the primary API: [`PreparedMaxFlow`] builds the
//!   congestion approximator, repair tree and scratch buffers once, then
//!   answers many `(s, t)` / demand queries against them (prepare-once /
//!   query-many, with zero heap allocation per gradient iteration);
//! * [`mod@almost_route`] — Sherman's gradient descent on the soft-max
//!   potential (Algorithm 2, §9.1);
//! * [`solver`] — the top-level reduction from max flow to congestion
//!   minimization plus residual repair on a spanning tree (Algorithm 1), and
//!   the one-shot convenience wrappers around the session;
//! * [`distributed`] — execution of the same pipeline with CONGEST round
//!   accounting driven by the real message-passing primitives of the
//!   `congest` crate (BFS trees, tree decompositions, subtree aggregations),
//!   including the amortized [`SessionBill`] of a prepared session.
//!
//! # Quickstart
//!
//! Prepare a session once, then query it as often as needed — each query is
//! just the cheap gradient iterations:
//!
//! ```
//! use flowgraph::{gen, NodeId};
//! use maxflow::{MaxFlowConfig, PreparedMaxFlow};
//!
//! let g = gen::grid(5, 5, 1.0);
//! let mut session = PreparedMaxFlow::prepare(&g, &MaxFlowConfig::default()).unwrap();
//! let result = session.max_flow(NodeId(0), NodeId(24)).unwrap();
//! assert!(result.value > 0.0);
//! assert!(result.value <= result.upper_bound);
//! // The flow is feasible and conserves at every internal node.
//! result.flow.validate_st_flow(&g, NodeId(0), NodeId(24), 1e-6).unwrap();
//! // Further queries reuse the prepared approximator and scratch buffers.
//! let reverse = session.max_flow(NodeId(24), NodeId(0)).unwrap();
//! assert!(reverse.value > 0.0);
//! ```
//!
//! To use more cores, opt into a worker pool with
//! [`MaxFlowConfig::with_parallelism`]: single queries fan the per-tree
//! operator evaluations of every gradient iteration across the workers, and
//! [`PreparedMaxFlow::par_max_flow_batch`] additionally fans independent
//! `(s, t)` queries of a batch across them. Both are pure performance knobs —
//! results are byte-identical to `threads = 1` for any thread count. When
//! serving many queries, the batch fan-out is the primary lever (one worker
//! team per batch); the in-query operator fan-out re-spawns its scoped
//! workers every iteration and only pays off on large instances:
//!
//! ```
//! use flowgraph::{gen, NodeId};
//! use maxflow::{MaxFlowConfig, Parallelism, PreparedMaxFlow};
//!
//! let g = gen::grid(5, 5, 1.0);
//! let cfg = MaxFlowConfig::default().with_parallelism(Parallelism::with_threads(4));
//! let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
//! let pairs = [(NodeId(0), NodeId(24)), (NodeId(4), NodeId(20))];
//! let results = session.par_max_flow_batch(&pairs).unwrap();
//! assert_eq!(results.len(), 2);
//! ```
//!
//! The multiplicative-weights ensemble *construction* stays sequential by
//! design: each tree's edge lengths depend on the loads of all previous
//! trees, so the build is an inherently sequential fixpoint iteration (it is
//! also a one-time cost that [`PreparedMaxFlow`] amortizes away).
//!
//! The free function [`approx_max_flow`] remains as a thin one-shot wrapper
//! (it prepares a throwaway session per call and answers byte-identically to
//! a session with the same seed):
//!
//! ```
//! use flowgraph::{gen, NodeId};
//! use maxflow::{approx_max_flow, MaxFlowConfig};
//!
//! let g = gen::grid(5, 5, 1.0);
//! let result = approx_max_flow(&g, NodeId(0), NodeId(24), &MaxFlowConfig::default()).unwrap();
//! assert!(result.value > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod almost_route;
pub mod config_io;
pub mod distributed;
pub mod session;
pub mod solver;

pub use almost_route::{
    almost_route, almost_route_with, AlmostRouteConfig, AlmostRouteResult, AlmostRouteScratch,
};
pub use capprox::{CapacityChange, CapacityUpdateStats, HierarchyConfig, HierarchyStats};
pub use congest::model::{Adversary, CommModel};
pub use distributed::{
    distributed_approx_max_flow, distributed_approx_max_flow_on, DistributedMaxFlowResult,
    RoundBreakdown, SessionBill,
};
pub use parallel::Parallelism;
pub use session::{PreparedMaxFlow, PreparedParts};
pub use solver::{
    approx_max_flow, approx_max_flow_with, route_demand, MaxFlowConfig, MaxFlowResult,
    RoutingResult,
};
