//! The top-level max-flow algorithm (paper §9, Algorithm 1).
//!
//! Max flow is reduced to congestion minimization: to ship `F` units from `s`
//! to `t`, route the demand `b = F·(χ_t − χ_s)` with as little edge
//! congestion as possible. Algorithm 1 calls `AlmostRoute` a logarithmic
//! number of times on the residual demand (each call halves what is left),
//! then routes the final residual exactly over a maximum-weight spanning
//! tree. Scaling the result down by its maximum congestion yields a feasible
//! flow; choosing `F` to be the smallest cut of the congestion approximator
//! separating `s` and `t` (a genuine cut of `G`, hence an upper bound on the
//! max flow) makes the scaled value a `(1+ε)`-approximation.

use capprox::{CongestionApproximator, HierarchyConfig, RackeConfig};
use flowgraph::{max_weight_spanning_tree, Demand, FlowVec, Graph, GraphError, NodeId, RootedTree};
use parallel::Parallelism;
use serde::{Deserialize, Serialize};

use crate::almost_route::{
    almost_route_block_with_norms, almost_route_warm_with, AlmostRouteConfig, AlmostRouteScratch,
    BlockScratch,
};

/// A session's memory of its last answered query, used to warm-start the next
/// one when [`MaxFlowConfig::warm_start`] is enabled.
///
/// The cached flow routes `target · (χ_t − χ_s)` exactly (the residual was
/// repaired on the spanning tree), so rescaling it to a new target — or
/// negating it for the reversed pair — yields a starting point whose demand
/// term of the potential is already near its minimum.
#[derive(Debug, Clone)]
pub(crate) struct WarmCache {
    s: NodeId,
    t: NodeId,
    target: f64,
    flow: FlowVec,
}

impl WarmCache {
    /// The cached flow rescaled for a query `(s, t, target)`, or `None` if
    /// the cache is for a different terminal pair.
    fn scaled_for(&self, s: NodeId, t: NodeId, target: f64) -> Option<FlowVec> {
        if !(self.target.is_finite() && self.target > 0.0) {
            return None;
        }
        let ratio = target / self.target;
        let signed_ratio = if (self.s, self.t) == (s, t) {
            ratio
        } else if (self.s, self.t) == (t, s) {
            -ratio
        } else {
            return None;
        };
        let mut flow = self.flow.clone();
        flow.scale(signed_ratio);
        Some(flow)
    }
}

/// Configuration for the approximate max-flow solver.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxFlowConfig {
    /// Target approximation parameter ε.
    pub epsilon: f64,
    /// Configuration of the congestion-approximator construction.
    pub racke: RackeConfig,
    /// Override for the approximator quality α used by the gradient descent
    /// (`None` = the approximator's provable bound).
    pub alpha: Option<f64>,
    /// Cap on gradient iterations per `AlmostRoute` call.
    pub max_iterations_per_phase: usize,
    /// Number of `AlmostRoute` phases (Algorithm 1 uses `log m + 1`; `None`
    /// selects exactly that).
    pub phases: Option<usize>,
    /// Warm-start repeated session queries: a [`crate::PreparedMaxFlow`]
    /// remembers its last answer and, when the next query asks about the same
    /// (or reversed) terminal pair, starts the gradient descent from that
    /// flow instead of zero — and lets the descent grow its step size
    /// adaptively while the potential keeps decreasing. Defaults to **off**;
    /// when off, every entry point is byte-identical to the history-free
    /// solver. See [`MaxFlowConfig::with_warm_start`].
    #[serde(default)]
    pub warm_start: bool,
    /// Worker pool for the parallel execution paths: per-iteration operator
    /// evaluations inside a query and query fan-out in
    /// [`crate::PreparedMaxFlow::par_max_flow_batch`]. Strictly a performance
    /// knob — every entry point is byte-identical to
    /// [`Parallelism::sequential`] for any thread count. Machine-specific,
    /// so never serialized: a deserialized config runs sequentially until
    /// the deployment opts back in.
    #[serde(skip, default)]
    pub parallelism: Parallelism,
    /// Build the congestion approximator through the recursive j-tree
    /// hierarchy of Theorem 8.10 instead of the direct Räcke construction —
    /// the million-node preparation path (see `capprox::hierarchy`). `None`
    /// (the default) keeps the direct build.
    #[serde(default)]
    pub hierarchy: Option<HierarchyConfig>,
}

impl Default for MaxFlowConfig {
    fn default() -> Self {
        MaxFlowConfig {
            epsilon: 0.1,
            racke: RackeConfig::default(),
            alpha: None,
            max_iterations_per_phase: 5_000,
            phases: None,
            warm_start: false,
            parallelism: Parallelism::sequential(),
            hierarchy: None,
        }
    }
}

impl MaxFlowConfig {
    /// Replaces the target approximation parameter ε.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Replaces the RNG seed used by the approximator construction.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.racke = self.racke.clone().with_seed(seed);
        self
    }

    /// Replaces the congestion-approximator construction configuration.
    #[must_use]
    pub fn with_racke(mut self, racke: RackeConfig) -> Self {
        self.racke = racke;
        self
    }

    /// Overrides the approximator quality α assumed by the gradient descent
    /// (`None` restores the provable bound).
    #[must_use]
    pub fn with_alpha(mut self, alpha: Option<f64>) -> Self {
        self.alpha = alpha;
        self
    }

    /// Replaces the cap on gradient iterations per `AlmostRoute` phase.
    #[must_use]
    pub fn with_max_iterations_per_phase(mut self, cap: usize) -> Self {
        self.max_iterations_per_phase = cap;
        self
    }

    /// Replaces the number of `AlmostRoute` phases (`None` restores the
    /// `log m + 1` schedule of Algorithm 1).
    #[must_use]
    pub fn with_phases(mut self, phases: Option<usize>) -> Self {
        self.phases = phases;
        self
    }

    /// Enables or disables warm-started session queries.
    ///
    /// When enabled, a [`crate::PreparedMaxFlow`] session seeds each query's
    /// gradient descent with its previous answer whenever the terminal pair
    /// repeats (in either orientation, rescaled to the new target), and the
    /// descent adapts its step size with backtracking. Answers then depend on
    /// query history — still `(1+ε)`-approximate and certified by the same
    /// `value ≤ maxflow ≤ upper_bound` bracket, but no longer byte-identical
    /// to a fresh query. Leave it off (the default) when reproducibility
    /// across query orders matters.
    ///
    /// ```
    /// use flowgraph::{gen, NodeId};
    /// use maxflow::{MaxFlowConfig, PreparedMaxFlow};
    ///
    /// let g = gen::grid(5, 5, 1.0);
    /// let cfg = MaxFlowConfig::default().with_warm_start(true);
    /// assert!(cfg.warm_start);
    ///
    /// let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
    /// let cold = session.max_flow(NodeId(0), NodeId(24)).unwrap();
    /// // The repeat starts from `cold.flow` and stays certified.
    /// let warm = session.max_flow(NodeId(0), NodeId(24)).unwrap();
    /// assert!(warm.value > 0.0 && warm.value <= warm.upper_bound + 1e-9);
    /// assert_eq!(warm.upper_bound.to_bits(), cold.upper_bound.to_bits());
    /// ```
    #[must_use]
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Replaces the worker pool used by the parallel execution paths.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Enables (or disables with `None`) the recursive hierarchy preparation
    /// path: the congestion approximator is assembled level by level through
    /// j-trees instead of directly on the full graph, which is what makes
    /// `prepare` affordable at millions of nodes.
    #[must_use]
    pub fn with_hierarchy(mut self, hierarchy: Option<HierarchyConfig>) -> Self {
        self.hierarchy = hierarchy;
        self
    }

    /// Rejects configurations that can never produce a meaningful run —
    /// non-positive or NaN `epsilon`, a zero iteration budget, zero phases,
    /// an empty tree ensemble, or a non-finite / sub-unit α override — before
    /// they turn into endless loops or NaN flows deep inside the descent.
    /// Called by every solver entry point that takes the config.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] naming the offending parameter.
    pub fn validate(&self) -> Result<(), GraphError> {
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(GraphError::InvalidConfig {
                parameter: "epsilon",
                reason: "must be a finite number > 0",
            });
        }
        if self.max_iterations_per_phase == 0 {
            return Err(GraphError::InvalidConfig {
                parameter: "max_iterations_per_phase",
                reason: "must be at least 1",
            });
        }
        if self.phases == Some(0) {
            return Err(GraphError::InvalidConfig {
                parameter: "phases",
                reason: "must be at least 1 (or None for the log m + 1 schedule)",
            });
        }
        if self.racke.num_trees == Some(0) {
            return Err(GraphError::InvalidConfig {
                parameter: "racke.num_trees",
                reason: "must be at least 1 (or None for the O(log n) schedule)",
            });
        }
        if let Some(alpha) = self.alpha {
            if !alpha.is_finite() || alpha <= 0.0 {
                return Err(GraphError::InvalidConfig {
                    parameter: "alpha",
                    reason: "must be a finite number > 0 (or None for the provable bound)",
                });
            }
        }
        if let Some(quality) = self.racke.target_quality {
            if !quality.is_finite() || quality < 1.0 {
                return Err(GraphError::InvalidConfig {
                    parameter: "racke.target_quality",
                    reason: "must be a finite number >= 1 (or None to keep the full schedule)",
                });
            }
        }
        if let Some(hierarchy) = &self.hierarchy {
            hierarchy.validate()?;
        }
        Ok(())
    }
}

/// Result of routing a demand with near-optimal congestion (Algorithm 1
/// without the final scaling).
#[derive(Debug, Clone)]
pub struct RoutingResult {
    /// A flow with `Bf = b` exactly (the residual is repaired on a tree).
    pub flow: FlowVec,
    /// Maximum edge congestion of that flow.
    pub congestion: f64,
    /// Total gradient iterations over all phases.
    pub iterations: usize,
    /// Number of `AlmostRoute` phases executed.
    pub phases: usize,
}

/// Result of the approximate max-flow computation.
#[derive(Debug, Clone)]
pub struct MaxFlowResult {
    /// A feasible s–t flow (capacities respected, conservation exact).
    pub flow: FlowVec,
    /// Value of that flow.
    pub value: f64,
    /// A certified upper bound on the maximum flow: the capacity of an actual
    /// s–t cut of `G` (the best cut known to the congestion approximator).
    pub upper_bound: f64,
    /// Total gradient-descent iterations.
    pub iterations: usize,
    /// Number of `AlmostRoute` phases.
    pub phases: usize,
    /// Statistics of the congestion approximator that was used.
    pub approximator: capprox::ApproximatorStats,
}

impl MaxFlowResult {
    /// The certified approximation ratio `value / upper_bound ∈ (0, 1]`: the
    /// computed flow is at least this fraction of the (unknown) maximum flow.
    pub fn certified_ratio(&self) -> f64 {
        if self.upper_bound <= 0.0 {
            1.0
        } else {
            (self.value / self.upper_bound).min(1.0)
        }
    }
}

/// Routes the demand `b` exactly (Algorithm 1 without the max-flow scaling):
/// repeated `AlmostRoute` phases on the residual followed by an exact repair
/// over a maximum-weight spanning tree.
///
/// Convenience wrapper that rebuilds the repair tree and scratch buffers per
/// call; prefer [`crate::PreparedMaxFlow::route`] when issuing several
/// queries against one graph.
///
/// # Errors
///
/// Returns [`GraphError::DemandMismatch`] if `b` does not match the graph's
/// node count, and [`GraphError::Empty`] / [`GraphError::NotConnected`] for
/// degenerate graphs.
pub fn route_demand(
    g: &Graph,
    r: &CongestionApproximator,
    b: &Demand,
    config: &MaxFlowConfig,
) -> Result<RoutingResult, GraphError> {
    config.validate()?;
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    if g.num_edges() == 0 {
        // The soft-max potential is undefined over an empty edge set (see
        // `almost_route::smax`); reject before the descent ever evaluates it.
        return Err(GraphError::NoEdges);
    }
    if b.len() != g.num_nodes() {
        return Err(GraphError::DemandMismatch {
            expected: g.num_nodes(),
            actual: b.len(),
        });
    }
    let repair_tree = max_weight_spanning_tree(g, NodeId(0))?;
    let mut scratch = AlmostRouteScratch::default();
    route_demand_engine(g, r, &repair_tree, b, config, &mut scratch, None)
}

/// The shared routing engine behind [`route_demand`] and
/// [`crate::PreparedMaxFlow::route`]: the repair tree and the gradient
/// scratch are supplied by the caller, so a session amortizes both. `warm`
/// optionally seeds the first `AlmostRoute` phase (whose residual is `b`
/// itself) with a previous flow; later phases route what the earlier ones
/// left behind, for which no cached flow applies.
pub(crate) fn route_demand_engine(
    g: &Graph,
    r: &CongestionApproximator,
    repair_tree: &RootedTree,
    b: &Demand,
    config: &MaxFlowConfig,
    scratch: &mut AlmostRouteScratch,
    warm: Option<&FlowVec>,
) -> Result<RoutingResult, GraphError> {
    if b.len() != g.num_nodes() {
        return Err(GraphError::DemandMismatch {
            expected: g.num_nodes(),
            actual: b.len(),
        });
    }
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    let m = g.num_edges().max(2);
    let phases = config
        .phases
        .unwrap_or((m as f64).log2().ceil() as usize + 1);
    let ar_config = AlmostRouteConfig {
        // Algorithm 1 calls AlmostRoute with ε = 1/2 in every phase; the
        // outer ε only controls the final scaling accuracy. We pass the outer
        // ε through when it is smaller to tighten the last phases.
        epsilon: config.epsilon.min(0.5),
        alpha: config.alpha,
        max_iterations: config.max_iterations_per_phase,
        adaptive_steps: config.warm_start,
        parallelism: config.parallelism,
    };

    let mut total = FlowVec::zeros(g.num_edges());
    let mut iterations = 0usize;
    let mut executed_phases = 0usize;
    let initial_norm = scratch.congestion_lower_bound(r, b).max(f64::MIN_POSITIVE);
    // Once the residual is this small relative to the original demand, the
    // exact tree repair contributes only a negligible amount of congestion,
    // so further AlmostRoute phases would be wasted work.
    let stop_norm = initial_norm * (config.epsilon * 1e-2).max(1e-6);
    // One residual buffer for the whole query instead of a fresh allocation
    // per phase.
    let mut residual = Demand::zeros(g.num_nodes());
    for phase in 0..phases {
        b.residual_into(g, &total, &mut residual);
        let norm = scratch.congestion_lower_bound(r, &residual);
        if norm <= stop_norm {
            break;
        }
        let phase_warm = if phase == 0 { warm } else { None };
        let ar = almost_route_warm_with(g, r, &residual, &ar_config, scratch, phase_warm);
        iterations += ar.iterations;
        executed_phases += 1;
        total.add_assign(&ar.flow);
    }

    // Steps 5–6 of Algorithm 1: repair the remaining residual exactly on the
    // maximum-weight spanning tree.
    b.residual_into(g, &total, &mut residual);
    let repair = repair_tree.route_demand_on_graph(g, &residual)?;
    total.add_assign(&repair);

    let congestion = total.max_congestion(g);
    Ok(RoutingResult {
        flow: total,
        congestion,
        iterations,
        phases: executed_phases,
    })
}

/// Blocked counterpart of [`route_demand_engine`]: routes `k` demands in
/// lockstep through the multi-right-hand-side gradient driver, advancing the
/// phase schedule per lane (a lane whose residual drops below its stop norm
/// leaves the batch and stops paying for sweeps). `results[l]` is
/// byte-identical to `route_demand_engine` on `demands[l]` with `warms[l]`.
///
/// Fails fast on the earliest (by lane index) invalid demand; per-lane
/// validation happens before any gradient work, so an error never discards
/// finished lanes.
pub(crate) fn route_demand_block_engine(
    g: &Graph,
    r: &CongestionApproximator,
    repair_tree: &RootedTree,
    demands: &[&Demand],
    config: &MaxFlowConfig,
    scratch: &mut BlockScratch,
    warms: &[Option<&FlowVec>],
) -> Result<Vec<RoutingResult>, GraphError> {
    debug_assert_eq!(demands.len(), warms.len());
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    for b in demands {
        if b.len() != g.num_nodes() {
            return Err(GraphError::DemandMismatch {
                expected: g.num_nodes(),
                actual: b.len(),
            });
        }
    }
    let k = demands.len();
    if k == 0 {
        return Ok(Vec::new());
    }
    let m2 = g.num_edges().max(2);
    let phases = config
        .phases
        .unwrap_or((m2 as f64).log2().ceil() as usize + 1);
    let ar_config = AlmostRouteConfig {
        epsilon: config.epsilon.min(0.5),
        alpha: config.alpha,
        max_iterations: config.max_iterations_per_phase,
        adaptive_steps: config.warm_start,
        parallelism: config.parallelism,
    };

    let mut totals: Vec<FlowVec> = vec![FlowVec::zeros(g.num_edges()); k];
    let mut iterations = vec![0usize; k];
    let mut executed_phases = vec![0usize; k];
    let mut residuals: Vec<Demand> = vec![Demand::zeros(g.num_nodes()); k];
    let mut stop_norms = vec![0.0f64; k];
    let mut active: Vec<usize> = (0..k).collect();

    for phase in 0..phases {
        if active.is_empty() {
            break;
        }
        for &l in &active {
            demands[l].residual_into(g, &totals[l], &mut residuals[l]);
        }
        // One blocked sweep computes every active lane's residual norm; the
        // scalar engine's `initial_norm` is the phase-0 norm bit-for-bit
        // (the residual of the zero flow is the demand itself), so the stop
        // norms come for free here.
        let refs: Vec<&Demand> = active.iter().map(|&l| &residuals[l]).collect();
        let norms = scratch
            .congestion_lower_bounds(g, r, &refs, &config.parallelism)
            .to_vec();
        if phase == 0 {
            for (j, &l) in active.iter().enumerate() {
                let initial = norms[j].max(f64::MIN_POSITIVE);
                stop_norms[l] = initial * (config.epsilon * 1e-2).max(1e-6);
            }
        }
        let mut still = Vec::with_capacity(active.len());
        let mut still_norms = Vec::with_capacity(active.len());
        for (j, &l) in active.iter().enumerate() {
            if norms[j] <= stop_norms[l] {
                continue;
            }
            still.push(l);
            still_norms.push(norms[j]);
        }
        active = still;
        if active.is_empty() {
            break;
        }
        let refs: Vec<&Demand> = active.iter().map(|&l| &residuals[l]).collect();
        let phase_warms: Vec<Option<&FlowVec>> = active
            .iter()
            .map(|&l| if phase == 0 { warms[l] } else { None })
            .collect();
        let ars = almost_route_block_with_norms(
            g,
            r,
            &refs,
            &phase_warms,
            &still_norms,
            &ar_config,
            scratch,
        );
        for (j, &l) in active.iter().enumerate() {
            iterations[l] += ars[j].iterations;
            executed_phases[l] += 1;
            totals[l].add_assign(&ars[j].flow);
        }
    }

    let mut results = Vec::with_capacity(k);
    for (l, total) in totals.into_iter().enumerate() {
        demands[l].residual_into(g, &total, &mut residuals[l]);
        let repair = repair_tree.route_demand_on_graph(g, &residuals[l])?;
        let mut flow = total;
        flow.add_assign(&repair);
        let congestion = flow.max_congestion(g);
        results.push(RoutingResult {
            flow,
            congestion,
            iterations: iterations[l],
            phases: executed_phases[l],
        });
    }
    Ok(results)
}

/// Computes a `(1+ε)`-approximate maximum s–t flow (Theorem 1.1, centralized
/// execution).
///
/// The returned flow is always feasible; `upper_bound` certifies how close to
/// optimal it is (`value ≤ maxflow ≤ upper_bound`).
///
/// Convenience wrapper equivalent to
/// `PreparedMaxFlow::prepare(g, config)?.max_flow(s, t)` — it rebuilds the
/// congestion approximator and repair tree on every call. Prefer
/// [`crate::PreparedMaxFlow`] when several queries hit one graph.
///
/// # Errors
///
/// Returns [`GraphError::Empty`] / [`GraphError::NotConnected`] for degenerate
/// graphs and [`GraphError::NodeOutOfRange`] for invalid terminals.
pub fn approx_max_flow(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    config: &MaxFlowConfig,
) -> Result<MaxFlowResult, GraphError> {
    crate::PreparedMaxFlow::prepare(g, config)?.max_flow(s, t)
}

/// Like [`approx_max_flow`] but re-uses an already constructed congestion
/// approximator (useful when solving several terminal pairs on one graph, and
/// for the distributed driver which accounts the construction separately).
///
/// Convenience wrapper that still rebuilds the repair tree and scratch
/// buffers per call; [`crate::PreparedMaxFlow`] amortizes those too.
///
/// # Errors
///
/// Same conditions as [`approx_max_flow`].
pub fn approx_max_flow_with(
    g: &Graph,
    r: &CongestionApproximator,
    s: NodeId,
    t: NodeId,
    config: &MaxFlowConfig,
) -> Result<MaxFlowResult, GraphError> {
    config.validate()?;
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    if !g.is_connected() {
        return Err(GraphError::NotConnected);
    }
    if g.num_edges() == 0 {
        return Err(GraphError::NoEdges);
    }
    let repair_tree = max_weight_spanning_tree(g, NodeId(0))?;
    let mut scratch = AlmostRouteScratch::default();
    max_flow_engine(g, r, &repair_tree, s, t, config, &mut scratch, None)
}

/// The shared query engine behind [`approx_max_flow`],
/// [`approx_max_flow_with`] and [`crate::PreparedMaxFlow::max_flow`]. The
/// graph is assumed non-empty and connected (validated when the session is
/// prepared); terminals are validated here, per query.
///
/// `warm_cache` is the session's previous-answer slot: read to seed the
/// descent when [`MaxFlowConfig::warm_start`] is enabled and the terminal
/// pair matches, written with this query's routing afterwards. One-shot
/// callers pass `None` and behave history-free.
#[allow(clippy::too_many_arguments)]
pub(crate) fn max_flow_engine(
    g: &Graph,
    r: &CongestionApproximator,
    repair_tree: &RootedTree,
    s: NodeId,
    t: NodeId,
    config: &MaxFlowConfig,
    scratch: &mut AlmostRouteScratch,
    warm_cache: Option<&mut Option<WarmCache>>,
) -> Result<MaxFlowResult, GraphError> {
    for v in [s, t] {
        if v.index() >= g.num_nodes() {
            return Err(GraphError::NodeOutOfRange {
                node: v.index(),
                num_nodes: g.num_nodes(),
            });
        }
    }
    if s == t {
        return Err(GraphError::SelfLoop { node: s.index() });
    }

    // Target flow value: the smallest s-t cut among the approximator's rows.
    // Every row is an actual cut of G, so this is a certified upper bound on
    // the maximum flow (max-flow min-cut).
    let unit = Demand::st(g, s, t, 1.0);
    let unit_congestion = scratch.congestion_lower_bound(r, &unit);
    if unit_congestion <= 0.0 {
        // No cut of the ensemble separates s and t — impossible for spanning
        // trees of a connected graph, treat as malformed input.
        return Err(GraphError::NotConnected);
    }
    // The singleton cuts around s and t are always available to every node
    // locally (they are just the incident capacities), so the target never
    // needs to exceed them.
    let degree_cut = g.weighted_degree(s).min(g.weighted_degree(t));
    let target = (1.0 / unit_congestion).min(degree_cut);

    let demand = Demand::st(g, s, t, target);
    let warm_flow = match (&warm_cache, config.warm_start) {
        (Some(cache), true) => cache
            .as_ref()
            .and_then(|state| state.scaled_for(s, t, target)),
        _ => None,
    };
    let routing = route_demand_engine(
        g,
        r,
        repair_tree,
        &demand,
        config,
        scratch,
        warm_flow.as_ref(),
    )?;
    if config.warm_start {
        if let Some(cache) = warm_cache {
            *cache = Some(WarmCache {
                s,
                t,
                target,
                flow: routing.flow.clone(),
            });
        }
    }

    // Scale down to feasibility. If the congestion is below 1 the flow is
    // already feasible and ships the full upper bound (then it is exactly
    // optimal, since value ≤ maxflow ≤ upper bound = value).
    let rho = routing.congestion.max(1.0);
    let mut flow = routing.flow;
    flow.scale(1.0 / rho);
    let value = target / rho;

    let (flow, value) = apply_tree_safety_net(g, r, s, t, &unit, flow, value)?;

    Ok(MaxFlowResult {
        flow,
        value,
        upper_bound: target,
        iterations: routing.iterations,
        phases: routing.phases,
        approximator: r.stats(),
    })
}

/// Safety net shared by the scalar and blocked query engines: routing the
/// unit demand over the best single tree of the ensemble and scaling it to
/// feasibility is another feasible flow; keep whichever is better. This
/// keeps the result sane even if the gradient descent was stopped early by
/// the iteration cap. One pass computes each tree's routing congestion
/// exactly once — through the sparse s–t path walk
/// (`st_tree_routing_congestion`, `O(tree depth)` instead of `O(n)` per
/// tree, bit-identical to the dense scan because the off-path nodes
/// contribute exact zeros to the max) — tracking both the minimum (the
/// certified congestion bound) and the first tree attaining it.
fn apply_tree_safety_net(
    g: &Graph,
    r: &CongestionApproximator,
    s: NodeId,
    t: NodeId,
    unit: &Demand,
    flow: FlowVec,
    value: f64,
) -> Result<(FlowVec, f64), GraphError> {
    let mut tree_congestion = f64::INFINITY;
    let mut best_tree = None;
    for tree in r.trees() {
        let c = tree.st_tree_routing_congestion(g, s, t, 1.0);
        tree_congestion = tree_congestion.min(c);
        match best_tree {
            // Strictly-less via `partial_cmp` rather than `c < best_c` so a
            // NaN routing congestion (malformed capacities) can never
            // displace a real one.
            Some((_, best_c)) if c.partial_cmp(&best_c) != Some(std::cmp::Ordering::Less) => {}
            _ => best_tree = Some((tree, c)),
        }
    }
    if tree_congestion.is_finite() && tree_congestion > 0.0 {
        let tree_value = 1.0 / tree_congestion;
        if tree_value > value {
            if let Some((best, _)) = best_tree {
                let mut tree_flow = best.tree.route_demand_on_graph(g, unit)?;
                tree_flow.scale(tree_value);
                return Ok((tree_flow, tree_value));
            }
        }
    }
    Ok((flow, value))
}

/// Blocked counterpart of [`max_flow_engine`]: answers `k` terminal pairs in
/// lockstep through [`route_demand_block_engine`]. `results[l]` is
/// byte-identical to `max_flow_engine` on `pairs[l]` warm-started from
/// `warm_in[l]`.
///
/// Warm state flows through explicitly instead of through the session slot:
/// `warm_in[l]` seeds lane `l` (when [`MaxFlowConfig::warm_start`] is on and
/// the cached pair matches), and the second return value carries a fresh
/// [`WarmCache`] for every lane the caller flagged in `store` — the session
/// layer decides which answers are worth keeping for later waves.
///
/// Fails fast on the earliest (by lane index) invalid pair; all per-lane
/// validation happens before any gradient work.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub(crate) fn max_flow_block_engine(
    g: &Graph,
    r: &CongestionApproximator,
    repair_tree: &RootedTree,
    pairs: &[(NodeId, NodeId)],
    config: &MaxFlowConfig,
    scratch: &mut BlockScratch,
    warm_in: &[Option<&WarmCache>],
    store: &[bool],
) -> Result<(Vec<MaxFlowResult>, Vec<Option<WarmCache>>), GraphError> {
    debug_assert_eq!(pairs.len(), warm_in.len());
    debug_assert_eq!(pairs.len(), store.len());
    let k = pairs.len();
    if k == 0 {
        return Ok((Vec::new(), Vec::new()));
    }
    for &(s, t) in pairs {
        for v in [s, t] {
            if v.index() >= g.num_nodes() {
                return Err(GraphError::NodeOutOfRange {
                    node: v.index(),
                    num_nodes: g.num_nodes(),
                });
            }
        }
        if s == t {
            return Err(GraphError::SelfLoop { node: s.index() });
        }
    }

    // Per-lane targets from one blocked sweep over the unit demands.
    let units: Vec<Demand> = pairs
        .iter()
        .map(|&(s, t)| Demand::st(g, s, t, 1.0))
        .collect();
    let unit_refs: Vec<&Demand> = units.iter().collect();
    let unit_congestions = scratch
        .congestion_lower_bounds(g, r, &unit_refs, &config.parallelism)
        .to_vec();
    for &c in &unit_congestions {
        if c <= 0.0 {
            return Err(GraphError::NotConnected);
        }
    }
    let targets: Vec<f64> = pairs
        .iter()
        .zip(&unit_congestions)
        .map(|(&(s, t), &c)| {
            let degree_cut = g.weighted_degree(s).min(g.weighted_degree(t));
            (1.0 / c).min(degree_cut)
        })
        .collect();

    let demands: Vec<Demand> = pairs
        .iter()
        .zip(&targets)
        .map(|(&(s, t), &target)| Demand::st(g, s, t, target))
        .collect();
    let warm_flows: Vec<Option<FlowVec>> = pairs
        .iter()
        .enumerate()
        .map(|(l, &(s, t))| {
            if config.warm_start {
                warm_in[l].and_then(|state| state.scaled_for(s, t, targets[l]))
            } else {
                None
            }
        })
        .collect();

    let demand_refs: Vec<&Demand> = demands.iter().collect();
    let warm_refs: Vec<Option<&FlowVec>> = warm_flows.iter().map(|w| w.as_ref()).collect();
    let routings =
        route_demand_block_engine(g, r, repair_tree, &demand_refs, config, scratch, &warm_refs)?;

    let mut results = Vec::with_capacity(k);
    let mut warm_out: Vec<Option<WarmCache>> = vec![None; k];
    for (l, routing) in routings.into_iter().enumerate() {
        let (s, t) = pairs[l];
        if config.warm_start && store[l] {
            warm_out[l] = Some(WarmCache {
                s,
                t,
                target: targets[l],
                flow: routing.flow.clone(),
            });
        }
        let rho = routing.congestion.max(1.0);
        let mut flow = routing.flow;
        flow.scale(1.0 / rho);
        let value = targets[l] / rho;
        let (flow, value) = apply_tree_safety_net(g, r, s, t, &units[l], flow, value)?;
        results.push(MaxFlowResult {
            flow,
            value,
            upper_bound: targets[l],
            iterations: routing.iterations,
            phases: routing.phases,
            approximator: r.stats(),
        });
    }
    Ok((results, warm_out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowgraph::gen;

    fn solve(g: &Graph, s: NodeId, t: NodeId, eps: f64) -> MaxFlowResult {
        let config = MaxFlowConfig {
            epsilon: eps,
            racke: RackeConfig::default().with_num_trees(8).with_seed(1),
            ..Default::default()
        };
        approx_max_flow(g, s, t, &config).unwrap()
    }

    #[test]
    fn flow_is_always_feasible_and_bracketed() {
        for fam in gen::Family::ALL {
            let g = fam.generate(30, 5);
            let (s, t) = gen::default_terminals(&g);
            let result = solve(&g, s, t, 0.2);
            let value = result
                .flow
                .validate_st_flow(&g, s, t, 1e-6)
                .unwrap_or_else(|e| panic!("family {fam}: infeasible flow: {e}"));
            assert!(
                (value - result.value).abs() < 1e-6 * (1.0 + value.abs()),
                "family {fam}"
            );
            assert!(
                result.value <= result.upper_bound + 1e-9,
                "family {fam}: value above certified upper bound"
            );
            assert!(result.value > 0.0, "family {fam}: zero flow");
        }
    }

    #[test]
    fn path_graph_is_solved_exactly() {
        // On a path the max flow equals the bottleneck capacity and a tree
        // routing attains it, so the result must be (numerically) exact.
        let mut g = Graph::with_nodes(5);
        let caps = [4.0, 2.0, 5.0, 3.0];
        for (i, &c) in caps.iter().enumerate() {
            g.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), c)
                .unwrap();
        }
        let result = solve(&g, NodeId(0), NodeId(4), 0.1);
        assert!((result.value - 2.0).abs() < 1e-6, "value {}", result.value);
        assert!((result.upper_bound - 2.0).abs() < 1e-6);
        assert!(result.certified_ratio() > 0.999);
    }

    #[test]
    fn barbell_bridge_is_the_bottleneck() {
        let g = gen::barbell(5, 2, 10.0, 3.0);
        let (s, t) = gen::default_terminals(&g);
        let result = solve(&g, s, t, 0.1);
        // The bridge has capacity 3; the solver must certify that.
        assert!((result.upper_bound - 3.0).abs() < 1e-9);
        assert!(result.value <= 3.0 + 1e-9);
        assert!(
            result.certified_ratio() > 0.8,
            "certified ratio {} too small",
            result.certified_ratio()
        );
    }

    #[test]
    fn grid_flow_reasonable_quality() {
        let g = gen::grid(5, 5, 1.0);
        let result = solve(&g, NodeId(0), NodeId(24), 0.2);
        // Corner-to-corner max flow on a unit 5x5 grid is 2 (degree bound).
        assert!(result.value <= 2.0 + 1e-9);
        assert!(
            result.value >= 1.2,
            "value {} too far below the optimum 2.0",
            result.value
        );
        assert!(result.iterations > 0);
    }

    #[test]
    fn route_demand_meets_demand_exactly() {
        let g = gen::grid(4, 4, 1.0);
        let r =
            CongestionApproximator::build(&g, &RackeConfig::default().with_num_trees(4)).unwrap();
        let b = Demand::st(&g, NodeId(0), NodeId(15), 1.5);
        let routing = route_demand(&g, &r, &b, &MaxFlowConfig::default()).unwrap();
        let ex = routing.flow.excess(&g);
        for v in g.nodes() {
            assert!(
                (ex[v.index()] - b.get(v)).abs() < 1e-6,
                "excess mismatch at {v}"
            );
        }
        assert!(routing.congestion > 0.0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let g = gen::path(4, 1.0);
        let config = MaxFlowConfig::default();
        assert!(approx_max_flow(&g, NodeId(0), NodeId(0), &config).is_err());
        assert!(approx_max_flow(&g, NodeId(0), NodeId(9), &config).is_err());
        let mut disconnected = Graph::with_nodes(4);
        disconnected.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert!(approx_max_flow(&disconnected, NodeId(0), NodeId(3), &config).is_err());
    }

    #[test]
    fn certified_ratio_is_within_unit_interval() {
        let g = gen::layered_st(3, 3, (1.0, 4.0), 3);
        let (s, t) = gen::default_terminals(&g);
        let result = solve(&g, s, t, 0.3);
        let ratio = result.certified_ratio();
        assert!(ratio > 0.0 && ratio <= 1.0);
    }
}
