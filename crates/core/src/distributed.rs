//! Distributed execution with CONGEST round accounting (paper §3 and §9).
//!
//! The algorithm that runs is exactly the centralized pipeline of
//! [`crate::solver`]; what this module adds is the *round bill* of executing
//! it in the CONGEST model, assembled from measured quantities:
//!
//! * the BFS tree used for global aggregation is built by the genuine
//!   message-passing protocol of `congest::primitives` (its depth is the
//!   measured stand-in for the diameter `D`), executed on the
//!   zero-allocation arena engine of `congest::engine`;
//! * every virtual tree of the congestion approximator is decomposed into
//!   `Õ(√n)` low-depth components (Lemma 8.2) and the subtree-sum / downcast
//!   aggregations that the gradient descent performs on it (§9.1) are
//!   executed as real message-passing protocols once, giving the measured
//!   per-iteration cost, which is then multiplied by the number of gradient
//!   iterations actually performed;
//! * the construction costs (sparsifier, low-stretch trees, tree
//!   capacities) are charged per Lemma 5.1 / Lemma 6.1 / Theorem 3.1 with the
//!   measured BFS depth, `√n`, and the measured number of cluster-level
//!   decomposition rounds.
//!
//! All measured protocol state — the network arena, the BFS tree, and one
//! cached [`DecomposedTree`] handle per virtual tree (Lemma 8.2 says the
//! decomposition is sampled once per tree, not once per aggregation) — lives
//! in a cached plan owned by the [`PreparedMaxFlow`] session, so a
//! build-once / query-many caller pays the construction bill once and only
//! the per-iteration and repair-aggregation bills per query.
//! [`PreparedMaxFlow::distributed_bill`] exposes exactly that amortized
//! split.
//!
//! The paper's headline claim — `(D + √n)·n^{o(1)}·ε^{-3}` rounds, far below
//! the `Θ(n²)` of distributed push–relabel and the `Θ(m)` of centralizing the
//! input — is what experiments E1/E9 check against this accounting.

use congest::model::CommModel;
use congest::primitives::{build_bfs_tree, build_bfs_tree_on, pipelined_broadcast_cost};
use congest::treeops::{DecomposedTree, TreeDecomposition};
use congest::{Network, RoundCost};
use flowgraph::{Graph, GraphError, NodeId, RootedTree};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::session::PreparedMaxFlow;
use crate::solver::{MaxFlowConfig, MaxFlowResult};

/// Round costs of the individual phases of the distributed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundBreakdown {
    /// Building the global BFS tree (measured protocol run).
    pub bfs_construction: RoundCost,
    /// Building the congestion approximator: sparsifier, low-stretch trees,
    /// tree capacities and tree decompositions.
    pub approximator_construction: RoundCost,
    /// One gradient-descent iteration: R·b and Rᵀ·y on every virtual tree
    /// plus the global scalar aggregations (measured protocol runs).
    pub per_iteration: RoundCost,
    /// All gradient-descent iterations.
    pub gradient_descent: RoundCost,
    /// Computing the maximum-weight spanning tree and routing the residual
    /// demand over it (Algorithm 1, steps 5–6).
    pub repair: RoundCost,
    /// Grand total.
    pub total: RoundCost,
}

/// Result of the distributed approximate max-flow computation.
#[derive(Debug, Clone)]
pub struct DistributedMaxFlowResult {
    /// The flow itself (identical to the centralized result for the same
    /// seed) together with value and certified upper bound.
    pub result: MaxFlowResult,
    /// The CONGEST round bill (standalone accounting: construction charged to
    /// this call; see [`PreparedMaxFlow::distributed_bill`] for the amortized
    /// session view).
    pub rounds: RoundBreakdown,
    /// Depth of the measured BFS tree (a 2-approximation of the diameter D).
    pub bfs_depth: usize,
    /// Number of network nodes.
    pub num_nodes: usize,
    /// Number of network edges.
    pub num_edges: usize,
}

impl DistributedMaxFlowResult {
    /// The paper's comparison yardstick `D + √n` for this instance.
    pub fn d_plus_sqrt_n(&self) -> f64 {
        self.bfs_depth as f64 + (self.num_nodes as f64).sqrt()
    }

    /// Total rounds divided by `D + √n` (the `n^{o(1)}·ε^{-3}` factor the
    /// paper leaves on the table; experiment E9 tracks how it grows with n).
    pub fn overhead_factor(&self) -> f64 {
        self.rounds.total.rounds as f64 / self.d_plus_sqrt_n().max(1.0)
    }
}

/// The amortized CONGEST bill of a prepared session: what a network pays
/// *once* when the session is prepared, and what every subsequent query pays
/// on top (per-iteration aggregations plus one repair aggregation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionBill {
    /// Building the global BFS tree (measured protocol run; charged once).
    pub bfs_construction: RoundCost,
    /// Building the congestion approximator: sparsifier, low-stretch trees,
    /// tree capacities and tree decompositions (charged once).
    pub approximator_construction: RoundCost,
    /// Computing the maximum-weight spanning tree used for residual repair
    /// (Kutten–Peleg, `Õ(√n + D)`; charged once — the per-call accounting of
    /// [`distributed_approx_max_flow`] charges it per query instead).
    pub repair_tree_construction: RoundCost,
    /// Everything charged once: the three construction items above.
    pub prepare_total: RoundCost,
    /// One gradient-descent iteration: R·b and Rᵀ·y on every virtual tree
    /// plus the global scalar aggregations (measured protocol runs).
    pub per_iteration: RoundCost,
    /// Routing the residual over the repair tree, once per query
    /// (Lemma 9.1, measured on the actual tree).
    pub per_query_repair: RoundCost,
    /// Depth of the measured BFS tree (a 2-approximation of the diameter D).
    pub bfs_depth: usize,
    /// Number of network nodes.
    pub num_nodes: usize,
}

impl SessionBill {
    /// Rounds charged to one query that performed `iterations` gradient
    /// iterations (construction excluded — it is in [`Self::prepare_total`]).
    pub fn query_rounds(&self, iterations: usize) -> RoundCost {
        self.per_iteration
            .repeat(iterations.max(1) as u64)
            .then(self.per_query_repair)
    }

    /// Total bill of preparing once and answering one query per entry of
    /// `iterations_per_query` — the number the `query_throughput` benchmark
    /// compares against `queries × standalone_total`.
    pub fn amortized_total(&self, iterations_per_query: &[usize]) -> RoundCost {
        iterations_per_query
            .iter()
            .fold(self.prepare_total, |acc, &it| {
                acc.then(self.query_rounds(it))
            })
    }

    /// The paper's comparison yardstick `D + √n` for this instance.
    pub fn d_plus_sqrt_n(&self) -> f64 {
        self.bfs_depth as f64 + (self.num_nodes as f64).sqrt()
    }
}

/// The cached distributed-execution state of a session: the simulated
/// network, the measured BFS tree, and re-runnable [`DecomposedTree`] handles
/// for every virtual tree and for the repair tree.
#[derive(Debug)]
pub(crate) struct DistributedPlan {
    network: Network,
    bfs_tree: RootedTree,
    bfs_cost: RoundCost,
    bfs_depth: usize,
    construction: RoundCost,
    per_iteration: RoundCost,
    /// Kutten–Peleg MST construction rounds, `(D + √n)·log n`.
    repair_tree_construction: RoundCost,
    /// Cached decomposition handles of the virtual trees (Lemma 8.2),
    /// in ensemble order.
    virtual_trees: Vec<DecomposedTree>,
    /// Cached decomposition handle of the repair tree (Lemma 9.1).
    repair: DecomposedTree,
    /// Measured cost of one repair aggregation over [`Self::repair`]
    /// (deterministic for a fixed plan, so measured once).
    per_query_repair: RoundCost,
}

impl DistributedPlan {
    /// Runs the measured construction protocols once for a prepared session.
    fn build(session: &PreparedMaxFlow<'_>) -> DistributedPlan {
        let g = session.graph();
        let config = session.config();
        let n = g.num_nodes();
        let sqrt_n = (n as f64).sqrt().ceil() as u64;
        let network = Network::new(g.clone());

        // Phase 1: global BFS tree (real protocol), rooted at the canonical
        // aggregation root. Its depth is within a factor 2 of the diameter
        // from any root, which is all the accounting uses it for.
        let bfs = build_bfs_tree(&network, NodeId(0));
        let bfs_depth = bfs.tree.max_depth();

        // Phase 2: congestion approximator construction. Sparsifier
        // (Lemma 6.1) plus the low-stretch spanning trees: each cluster-level
        // decomposition round is simulated in O(D + √n) network rounds
        // (Lemma 5.1 / Theorem 3.1).
        let mut construction = capprox::sparsify::congest_cost(n, bfs_depth);
        let decomposition_rounds = session.ensemble_stats().decomposition_rounds as u64;
        construction.add_sequential(RoundCost::rounds(
            decomposition_rounds * (bfs_depth as u64 + sqrt_n),
        ));

        // Tree capacities (Lemma 8.3) and the per-iteration aggregations
        // (§9.1): sample each tree's Lemma 8.2 decomposition once, run the
        // real decomposed protocols once and remember the cost.
        let mut rng = ChaCha8Rng::seed_from_u64(config.racke.seed ^ 0x9e3779b97f4a7c15);
        let cut_probability = TreeDecomposition::recommended_probability(n);
        let unit_values = vec![1.0; n];
        let mut per_iteration = RoundCost::ZERO;
        let mut virtual_trees = Vec::with_capacity(session.approximator().trees().len());
        for cap_tree in session.approximator().trees() {
            let handle = DecomposedTree::sample(cap_tree.tree.clone(), cut_probability, &mut rng);
            let up = handle.subtree_sums(&network, &bfs.tree, &unit_values);
            let down = handle.prefix_sums(&network, &bfs.tree, &unit_values);
            // Computing |f'| / the tree capacities costs one aggregation per
            // tree during construction (Lemma 8.3).
            construction.add_sequential(up.cost);
            // Each gradient iteration needs the y-values (subtree sums) and
            // the potentials π (downcast) on every tree. The O(log n) trees
            // are evaluated concurrently (their messages are pipelined over
            // shared edges exactly like the k-value aggregations of
            // Lemma 5.1), so the per-iteration round cost is the maximum over
            // trees, not the sum.
            per_iteration.add_parallel(up.cost.then(down.cost));
            virtual_trees.push(handle);
        }
        // Global scalar aggregations per iteration (φ1, φ2, δ and the step
        // bookkeeping): a constant number of converge/broadcasts on the BFS
        // tree.
        per_iteration.add_sequential(pipelined_broadcast_cost(&bfs.tree, 4));

        // Repair tree: maximum-weight spanning tree (Kutten–Peleg,
        // Õ(√n + D)) plus a cached Lemma 9.1 decomposition handle for the
        // per-query residual aggregation; its deterministic cost is measured
        // here, once.
        let logn = (n.max(2) as f64).log2().ceil() as u64;
        let repair_tree_construction = RoundCost::rounds((bfs_depth as u64 + sqrt_n) * logn);
        let repair =
            DecomposedTree::sample(session.repair_tree().clone(), cut_probability, &mut rng);
        let per_query_repair = repair.subtree_sums(&network, &bfs.tree, &unit_values).cost;

        DistributedPlan {
            network,
            bfs_tree: bfs.tree,
            bfs_cost: bfs.cost,
            bfs_depth,
            construction,
            per_iteration,
            repair_tree_construction,
            virtual_trees,
            repair,
            per_query_repair,
        }
    }
}

impl<'g> PreparedMaxFlow<'g> {
    fn ensure_plan(&mut self) -> &DistributedPlan {
        if self.parts.plan.is_none() {
            self.parts.plan = Some(DistributedPlan::build(self));
        }
        self.parts.plan.as_ref().expect("plan was just built")
    }

    /// The amortized CONGEST bill of this session: construction costs charged
    /// once, per-iteration and per-query-repair costs charged per query.
    ///
    /// The measured protocols run on first use and are cached; subsequent
    /// calls reuse the cached figures (every protocol is deterministic for a
    /// fixed plan, which [`Self::remeasure_query_costs`] pins).
    pub fn distributed_bill(&mut self) -> SessionBill {
        let num_nodes = self.graph().num_nodes();
        let plan = self.ensure_plan();
        let prepare_total = plan
            .bfs_cost
            .then(plan.construction)
            .then(plan.repair_tree_construction);
        SessionBill {
            bfs_construction: plan.bfs_cost,
            approximator_construction: plan.construction,
            repair_tree_construction: plan.repair_tree_construction,
            prepare_total,
            per_iteration: plan.per_iteration,
            per_query_repair: plan.per_query_repair,
            bfs_depth: plan.bfs_depth,
            num_nodes,
        }
    }

    /// Re-runs the per-query protocols through the cached [`DecomposedTree`]
    /// handles — the subtree-sum ("y-values") and downcast (potential)
    /// aggregations on every virtual tree plus the global scalar broadcasts,
    /// and the residual-repair aggregation on the repair tree — and returns
    /// the freshly measured `(per_iteration, per_query_repair)` costs.
    ///
    /// The protocols are deterministic for a fixed plan, so this equals the
    /// cached [`SessionBill`] figures; the test suite uses it to pin that
    /// the cached handles really are re-runnable.
    pub fn remeasure_query_costs(&mut self) -> (RoundCost, RoundCost) {
        let plan = self.ensure_plan();
        let unit_values = vec![1.0; plan.network.num_nodes()];
        let mut per_iteration = RoundCost::ZERO;
        for handle in &plan.virtual_trees {
            let up = handle.subtree_sums(&plan.network, &plan.bfs_tree, &unit_values);
            let down = handle.prefix_sums(&plan.network, &plan.bfs_tree, &unit_values);
            per_iteration.add_parallel(up.cost.then(down.cost));
        }
        per_iteration.add_sequential(pipelined_broadcast_cost(&plan.bfs_tree, 4));
        let repair = plan
            .repair
            .subtree_sums(&plan.network, &plan.bfs_tree, &unit_values)
            .cost;
        (per_iteration, repair)
    }

    /// Runs one s–t query under an arbitrary communication model
    /// (`CommModel::Classic` is [`Self::distributed_max_flow`] exactly,
    /// cached plan and all).
    ///
    /// The flow itself is computed by the same centralized gradient descent
    /// for every model — it is **byte-identical** across models — while the
    /// measured protocols (BFS construction, the Lemma 8.2 aggregations of
    /// every virtual tree, the Lemma 9.1 repair aggregation) are re-executed
    /// on the model's fabric, through the retransmit-with-ack adapter on the
    /// lossy model. Under an interfering adversary the round bill is
    /// therefore retransmission-inflated (but finite, and reproducible for a
    /// fixed adversary seed); under the clique it is classic's bill with the
    /// pair-capacity rule enforced.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Self::max_flow`], plus
    /// [`GraphError::InvalidConfig`] for [`CommModel::Bcast`] (the plan's
    /// protocols are edge-addressed; the `BCAST(log n)` tree aggregations
    /// live in `congest::treeops::bcast_subtree_sums`).
    pub fn distributed_max_flow_on(
        &mut self,
        s: NodeId,
        t: NodeId,
        model: &CommModel,
    ) -> Result<DistributedMaxFlowResult, GraphError> {
        if matches!(model, CommModel::Classic) {
            return self.distributed_max_flow(s, t);
        }
        if matches!(model, CommModel::Bcast) {
            return Err(GraphError::InvalidConfig {
                parameter: "comm_model",
                reason: "the distributed plan's protocols are edge-addressed and cannot run \
                         on BCAST(log n); use congest::treeops::bcast_subtree_sums for the \
                         broadcast-model tree aggregations",
            });
        }
        if matches!(model, CommModel::Clique) {
            // The plan's BFS flood sends one announcement per incident edge;
            // on a multigraph two parallel edges target one peer, which the
            // clique's one-word-per-ordered-pair rule cannot carry. Reject
            // up front with a typed error instead of panicking mid-protocol.
            let mut peers: Vec<u32> = Vec::new();
            for v in self.graph().nodes() {
                peers.clear();
                peers.extend(self.graph().incident(v).iter().map(|(_, w)| w.0));
                peers.sort_unstable();
                if peers.windows(2).any(|w| w[0] == w[1]) {
                    return Err(GraphError::InvalidConfig {
                        parameter: "comm_model",
                        reason: "the graph has parallel edges; the congested clique carries \
                                 one word per ordered node pair per round, so the plan's \
                                 per-edge BFS flood cannot run on it",
                    });
                }
            }
        }
        let result = self.max_flow(s, t)?;
        let (num_nodes, num_edges) = (self.graph().num_nodes(), self.graph().num_edges());
        let decomposition_rounds = self.ensemble_stats().decomposition_rounds as u64;
        self.ensure_plan();
        let plan = self.parts.plan.as_ref().expect("plan was just built");

        // Re-measure every protocol of the plan on the model's fabric. The
        // cached Lemma 8.2 / 9.1 decomposition handles are reused, so the
        // protocols are the same — only the channel behaves differently.
        let n = num_nodes;
        let sqrt_n = (n as f64).sqrt().ceil() as u64;
        let bfs = build_bfs_tree_on(model, &plan.network, NodeId(0));
        let bfs_depth = bfs.tree.max_depth();
        let mut construction = capprox::sparsify::congest_cost(n, bfs_depth);
        construction.add_sequential(RoundCost::rounds(
            decomposition_rounds * (bfs_depth as u64 + sqrt_n),
        ));
        let unit_values = vec![1.0; n];
        let mut per_iteration = RoundCost::ZERO;
        for handle in &plan.virtual_trees {
            let up = handle.subtree_sums_on(model, &plan.network, &bfs.tree, &unit_values);
            let down = handle.prefix_sums_on(model, &plan.network, &bfs.tree, &unit_values);
            construction.add_sequential(up.cost);
            per_iteration.add_parallel(up.cost.then(down.cost));
        }
        per_iteration.add_sequential(pipelined_broadcast_cost(&bfs.tree, 4));
        let logn = (n.max(2) as f64).log2().ceil() as u64;
        let repair_tree_construction = RoundCost::rounds((bfs_depth as u64 + sqrt_n) * logn);
        let per_query_repair = plan
            .repair
            .subtree_sums_on(model, &plan.network, &bfs.tree, &unit_values)
            .cost;

        let gradient_descent = per_iteration.repeat(result.iterations.max(1) as u64);
        let mut repair = repair_tree_construction;
        repair.add_sequential(per_query_repair);
        let total = bfs
            .cost
            .then(construction)
            .then(gradient_descent)
            .then(repair);
        Ok(DistributedMaxFlowResult {
            rounds: RoundBreakdown {
                bfs_construction: bfs.cost,
                approximator_construction: construction,
                per_iteration,
                gradient_descent,
                repair,
                total,
            },
            bfs_depth,
            num_nodes,
            num_edges,
            result,
        })
    }

    /// Runs one s–t query and returns the flow together with the standalone
    /// CONGEST round accounting (construction charged to this call, exactly
    /// like [`distributed_approx_max_flow`]); use
    /// [`Self::distributed_bill`] for the amortized session accounting.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Self::max_flow`].
    pub fn distributed_max_flow(
        &mut self,
        s: NodeId,
        t: NodeId,
    ) -> Result<DistributedMaxFlowResult, GraphError> {
        let result = self.max_flow(s, t)?;
        let (num_nodes, num_edges) = (self.graph().num_nodes(), self.graph().num_edges());
        let plan = self.ensure_plan();
        let gradient_descent = plan.per_iteration.repeat(result.iterations.max(1) as u64);
        let mut repair = plan.repair_tree_construction;
        repair.add_sequential(plan.per_query_repair);
        let total = plan
            .bfs_cost
            .then(plan.construction)
            .then(gradient_descent)
            .then(repair);
        Ok(DistributedMaxFlowResult {
            rounds: RoundBreakdown {
                bfs_construction: plan.bfs_cost,
                approximator_construction: plan.construction,
                per_iteration: plan.per_iteration,
                gradient_descent,
                repair,
                total,
            },
            bfs_depth: plan.bfs_depth,
            num_nodes,
            num_edges,
            result,
        })
    }
}

/// Runs the full pipeline and returns the flow together with the CONGEST
/// round accounting.
///
/// Convenience wrapper equivalent to preparing a [`PreparedMaxFlow`] session
/// and calling [`PreparedMaxFlow::distributed_max_flow`] once — every
/// measured protocol re-runs per call. Hold a session to amortize them.
///
/// Since PR 3 the measured BFS tree is rooted at the canonical aggregation
/// root `NodeId(0)` (query-independent, so one plan serves every terminal
/// pair) instead of at `s`; for `s ≠ 0` the reported `bfs_depth` and
/// depth-derived round charges may differ from earlier releases, the flow
/// itself is unchanged.
///
/// # Errors
///
/// Same error conditions as [`crate::solver::approx_max_flow`].
pub fn distributed_approx_max_flow(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    config: &MaxFlowConfig,
) -> Result<DistributedMaxFlowResult, GraphError> {
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    if !g.is_connected() {
        return Err(GraphError::NotConnected);
    }
    PreparedMaxFlow::prepare(g, config)?.distributed_max_flow(s, t)
}

/// [`distributed_approx_max_flow`] executed under an arbitrary communication
/// model — the one-shot form of
/// [`PreparedMaxFlow::distributed_max_flow_on`]. The flow is byte-identical
/// across models; the round bill reflects the model's fabric (classic and
/// clique agree, a lossy adversary inflates it with retransmissions).
///
/// # Errors
///
/// Same error conditions as [`PreparedMaxFlow::distributed_max_flow_on`].
pub fn distributed_approx_max_flow_on(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    config: &MaxFlowConfig,
    model: &CommModel,
) -> Result<DistributedMaxFlowResult, GraphError> {
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    if !g.is_connected() {
        return Err(GraphError::NotConnected);
    }
    PreparedMaxFlow::prepare(g, config)?.distributed_max_flow_on(s, t, model)
}

/// Routes a demand over a rooted spanning tree while accounting the CONGEST
/// cost of doing so with the decomposition technique of Lemma 9.1 (used by
/// the trivial "single spanning tree" baseline in the experiments).
///
/// # Panics
///
/// Panics if the tree is not a spanning subtree of the network graph.
pub fn distributed_tree_routing_cost(
    g: &Graph,
    tree: &RootedTree,
    seed: u64,
) -> (RoundCost, usize) {
    let n = g.num_nodes();
    let network = Network::new(g.clone());
    let bfs = build_bfs_tree(&network, tree.root());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dec = TreeDecomposition::sample(
        tree,
        TreeDecomposition::recommended_probability(n),
        &mut rng,
    );
    let values = vec![1.0; n];
    let run = congest::treeops::distributed_subtree_sums(&network, tree, &dec, &bfs.tree, &values);
    (bfs.cost.then(run.cost), bfs.tree.max_depth())
}

#[cfg(test)]
mod tests {
    use super::*;
    use capprox::RackeConfig;
    use flowgraph::gen;

    fn config(trees: usize) -> MaxFlowConfig {
        MaxFlowConfig {
            epsilon: 0.3,
            racke: RackeConfig::default().with_num_trees(trees).with_seed(3),
            ..Default::default()
        }
    }

    #[test]
    fn produces_same_quality_flow_as_centralized() {
        let g = gen::grid(5, 5, 1.0);
        let (s, t) = (NodeId(0), NodeId(24));
        let dist = distributed_approx_max_flow(&g, s, t, &config(4)).unwrap();
        dist.result.flow.validate_st_flow(&g, s, t, 1e-6).unwrap();
        assert!(dist.result.value > 0.0);
        assert!(dist.result.value <= dist.result.upper_bound + 1e-9);
    }

    #[test]
    fn round_breakdown_is_consistent() {
        let g = gen::grid(5, 5, 1.0);
        let dist = distributed_approx_max_flow(&g, NodeId(0), NodeId(24), &config(3)).unwrap();
        let r = &dist.rounds;
        let summed = r
            .bfs_construction
            .then(r.approximator_construction)
            .then(r.gradient_descent)
            .then(r.repair);
        assert_eq!(r.total.rounds, summed.rounds);
        assert!(r.per_iteration.rounds > 0);
        assert!(r.gradient_descent.rounds >= r.per_iteration.rounds);
        assert!(dist.bfs_depth >= 8, "corner BFS on a 5x5 grid has depth 8");
        assert!(dist.overhead_factor() >= 1.0);
    }

    #[test]
    fn per_iteration_cost_is_d_plus_sqrt_n_ish() {
        // The defining property of the distributed implementation (§9.1):
        // one gradient iteration costs Õ(D + √n) rounds, NOT Õ(n) — even on a
        // path, where a naive convergecast over the spanning tree would pay
        // Θ(n) per iteration.
        let g = gen::path(200, 1.0);
        let (s, t) = gen::default_terminals(&g);
        let cfg = MaxFlowConfig {
            max_iterations_per_phase: 5,
            phases: Some(1),
            ..config(3)
        };
        let dist = distributed_approx_max_flow(&g, s, t, &cfg).unwrap();
        let n = g.num_nodes() as f64;
        let d = dist.bfs_depth as f64;
        let budget = 30.0 * (d + n.sqrt()) * (n.log2() + 1.0);
        assert!(
            (dist.rounds.per_iteration.rounds as f64) < budget,
            "per-iteration cost {} exceeds Õ(D + √n) budget {budget}",
            dist.rounds.per_iteration.rounds
        );
    }

    #[test]
    fn session_bill_amortizes_construction() {
        let g = gen::grid(6, 6, 1.0);
        // Small per-query iteration budget so the construction share is
        // visible in the amortization ratio.
        let cfg = config(3)
            .with_phases(Some(2))
            .with_max_iterations_per_phase(50);
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let bill = session.distributed_bill();
        assert_eq!(
            bill.prepare_total.rounds,
            bill.bfs_construction
                .then(bill.approximator_construction)
                .then(bill.repair_tree_construction)
                .rounds
        );
        assert!(bill.per_iteration.rounds > 0);
        assert!(bill.per_query_repair.rounds > 0);

        // The amortized bill of k queries: construction once, then k query
        // bills — exactly what `amortized_total` composes, and strictly less
        // than k standalone bills (which re-charge construction every time).
        let dist = session.distributed_max_flow(NodeId(0), NodeId(35)).unwrap();
        let iters = dist.result.iterations;
        let k = 16;
        let amortized = bill.amortized_total(&vec![iters; k]);
        let per_query = bill.query_rounds(iters);
        assert_eq!(
            amortized.rounds,
            bill.prepare_total.rounds + k as u64 * per_query.rounds
        );
        let standalone = dist.rounds.total.repeat(k as u64);
        assert!(
            amortized.rounds + (k as u64 - 1) * bill.prepare_total.rounds <= standalone.rounds,
            "standalone must re-charge construction {k} times: amortized {} vs standalone {}",
            amortized.rounds,
            standalone.rounds
        );

        // The standalone view of a session query matches the wrapper exactly.
        let wrapper = distributed_approx_max_flow(&g, NodeId(0), NodeId(35), &cfg).unwrap();
        assert_eq!(wrapper.rounds, dist.rounds);
        assert_eq!(wrapper.result.value.to_bits(), dist.result.value.to_bits());
    }

    #[test]
    fn cached_protocol_handles_rerun_deterministically() {
        let g = gen::grid(5, 5, 1.0);
        let mut session = PreparedMaxFlow::prepare(&g, &config(3)).unwrap();
        let bill = session.distributed_bill();
        let (per_iteration, per_query_repair) = session.remeasure_query_costs();
        assert_eq!(per_iteration, bill.per_iteration);
        assert_eq!(per_query_repair, bill.per_query_repair);
    }

    #[test]
    fn model_flows_are_byte_identical_and_lossy_bills_inflate() {
        use congest::model::Adversary;
        let g = gen::grid(5, 5, 1.0);
        let cfg = config(3)
            .with_phases(Some(1))
            .with_max_iterations_per_phase(20);
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let classic = session.distributed_max_flow(NodeId(0), NodeId(24)).unwrap();

        // The clique executes the same protocols over a reliable fabric: the
        // whole breakdown matches classic.
        let clique = session
            .distributed_max_flow_on(NodeId(0), NodeId(24), &CommModel::Clique)
            .unwrap();
        assert_eq!(
            clique.result.value.to_bits(),
            classic.result.value.to_bits()
        );
        assert_eq!(clique.rounds, classic.rounds);

        // A benign adversary is indistinguishable from classic.
        let benign = session
            .distributed_max_flow_on(
                NodeId(0),
                NodeId(24),
                &CommModel::Lossy(Adversary::benign(3)),
            )
            .unwrap();
        assert_eq!(benign.rounds, classic.rounds);

        // Real drop rates: identical flow, inflated but finite bill with
        // visible retransmissions.
        for drop_p in [0.1, 0.2] {
            let lossy = session
                .distributed_max_flow_on(
                    NodeId(0),
                    NodeId(24),
                    &CommModel::Lossy(Adversary::lossy(17, drop_p)),
                )
                .unwrap();
            assert_eq!(
                lossy.result.value.to_bits(),
                classic.result.value.to_bits(),
                "p={drop_p}"
            );
            let flow_bits: Vec<u64> = lossy
                .result
                .flow
                .values()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let classic_bits: Vec<u64> = classic
                .result
                .flow
                .values()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(flow_bits, classic_bits, "p={drop_p}");
            assert!(
                lossy.rounds.total.rounds > classic.rounds.total.rounds,
                "p={drop_p}: lossy bill must exceed classic's"
            );
            assert!(lossy.rounds.total.retransmissions > 0, "p={drop_p}");
            assert_eq!(classic.rounds.total.retransmissions, 0);
            // The wrapper's one-word frame header is the only width change.
            assert!(
                lossy.rounds.per_iteration.max_message_words
                    <= classic.rounds.per_iteration.max_message_words + 1
            );
        }

        // The one-shot wrapper agrees with the session for the same model.
        let lossy_model = CommModel::Lossy(Adversary::lossy(17, 0.2));
        let one_shot =
            distributed_approx_max_flow_on(&g, NodeId(0), NodeId(24), &cfg, &lossy_model).unwrap();
        let session_run = session
            .distributed_max_flow_on(NodeId(0), NodeId(24), &lossy_model)
            .unwrap();
        assert_eq!(one_shot.rounds, session_run.rounds);
        assert_eq!(
            one_shot.result.value.to_bits(),
            session_run.result.value.to_bits()
        );
    }

    #[test]
    fn clique_model_rejects_multigraphs_with_a_typed_error() {
        // Parallel edges are legal in per-edge CONGEST but exceed the
        // clique's one-word-per-ordered-pair rule; the session must return
        // the typed error, not panic inside the BFS flood.
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        g.add_edge(NodeId(0), NodeId(1), 2.0).unwrap();
        g.add_edge(NodeId(1), NodeId(2), 1.0).unwrap();
        let mut session = PreparedMaxFlow::prepare(&g, &config(2)).unwrap();
        // The classic plan handles the multigraph fine...
        session.distributed_max_flow(NodeId(0), NodeId(2)).unwrap();
        // ...the clique rejects it up front.
        match session.distributed_max_flow_on(NodeId(0), NodeId(2), &CommModel::Clique) {
            Err(GraphError::InvalidConfig { parameter, reason }) => {
                assert_eq!(parameter, "comm_model");
                assert!(reason.contains("parallel edges"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // The lossy model still runs it (per-edge fabric, parallel edges OK).
        session
            .distributed_max_flow_on(
                NodeId(0),
                NodeId(2),
                &CommModel::Lossy(congest::model::Adversary::lossy(1, 0.1)),
            )
            .unwrap();
    }

    #[test]
    fn bcast_model_is_rejected_with_a_pointer_to_the_port() {
        let g = gen::grid(4, 4, 1.0);
        let mut session = PreparedMaxFlow::prepare(&g, &config(2)).unwrap();
        match session.distributed_max_flow_on(NodeId(0), NodeId(15), &CommModel::Bcast) {
            Err(GraphError::InvalidConfig { parameter, reason }) => {
                assert_eq!(parameter, "comm_model");
                assert!(reason.contains("bcast_subtree_sums"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn tree_routing_cost_helper_runs() {
        let g = gen::path(40, 1.0);
        let tree = flowgraph::spanning::bfs_tree(&g, NodeId(0)).unwrap();
        let (cost, depth) = distributed_tree_routing_cost(&g, &tree, 1);
        assert!(cost.rounds > 0);
        assert_eq!(depth, 39);
    }

    #[test]
    fn rejects_disconnected_graphs() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert!(matches!(
            distributed_approx_max_flow(&g, NodeId(0), NodeId(3), &config(2)),
            Err(GraphError::NotConnected)
        ));
    }
}
