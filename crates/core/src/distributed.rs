//! Distributed execution with CONGEST round accounting (paper §3 and §9).
//!
//! The algorithm that runs is exactly the centralized pipeline of
//! [`crate::solver`]; what this module adds is the *round bill* of executing
//! it in the CONGEST model, assembled from measured quantities:
//!
//! * the BFS tree used for global aggregation is built by the genuine
//!   message-passing protocol of `congest::primitives` (its depth is the
//!   measured stand-in for the diameter `D`), executed on the
//!   zero-allocation arena engine of `congest::engine`;
//! * every virtual tree of the congestion approximator is decomposed into
//!   `Õ(√n)` low-depth components (Lemma 8.2) and the subtree-sum / downcast
//!   aggregations that the gradient descent performs on it (§9.1) are
//!   executed as real message-passing protocols once, giving the measured
//!   per-iteration cost, which is then multiplied by the number of gradient
//!   iterations actually performed;
//! * the construction costs (sparsifier, low-stretch trees, tree
//!   capacities) are charged per Lemma 5.1 / Lemma 6.1 / Theorem 3.1 with the
//!   measured BFS depth, `√n`, and the measured number of cluster-level
//!   decomposition rounds.
//!
//! The paper's headline claim — `(D + √n)·n^{o(1)}·ε^{-3}` rounds, far below
//! the `Θ(n²)` of distributed push–relabel and the `Θ(m)` of centralizing the
//! input — is what experiments E1/E9 check against this accounting.

use capprox::{build_tree_ensemble, CongestionApproximator};
use congest::primitives::{build_bfs_tree, pipelined_broadcast_cost};
use congest::treeops::{distributed_prefix_sums, distributed_subtree_sums, TreeDecomposition};
use congest::{Network, RoundCost};
use flowgraph::{Graph, GraphError, NodeId, RootedTree};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::solver::{approx_max_flow_with, MaxFlowConfig, MaxFlowResult};

/// Round costs of the individual phases of the distributed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundBreakdown {
    /// Building the global BFS tree (measured protocol run).
    pub bfs_construction: RoundCost,
    /// Building the congestion approximator: sparsifier, low-stretch trees,
    /// tree capacities and tree decompositions.
    pub approximator_construction: RoundCost,
    /// One gradient-descent iteration: R·b and Rᵀ·y on every virtual tree
    /// plus the global scalar aggregations (measured protocol runs).
    pub per_iteration: RoundCost,
    /// All gradient-descent iterations.
    pub gradient_descent: RoundCost,
    /// Computing the maximum-weight spanning tree and routing the residual
    /// demand over it (Algorithm 1, steps 5–6).
    pub repair: RoundCost,
    /// Grand total.
    pub total: RoundCost,
}

/// Result of the distributed approximate max-flow computation.
#[derive(Debug, Clone)]
pub struct DistributedMaxFlowResult {
    /// The flow itself (identical to the centralized result for the same
    /// seed) together with value and certified upper bound.
    pub result: MaxFlowResult,
    /// The CONGEST round bill.
    pub rounds: RoundBreakdown,
    /// Depth of the measured BFS tree (a 2-approximation of the diameter D).
    pub bfs_depth: usize,
    /// Number of network nodes.
    pub num_nodes: usize,
    /// Number of network edges.
    pub num_edges: usize,
}

impl DistributedMaxFlowResult {
    /// The paper's comparison yardstick `D + √n` for this instance.
    pub fn d_plus_sqrt_n(&self) -> f64 {
        self.bfs_depth as f64 + (self.num_nodes as f64).sqrt()
    }

    /// Total rounds divided by `D + √n` (the `n^{o(1)}·ε^{-3}` factor the
    /// paper leaves on the table; experiment E9 tracks how it grows with n).
    pub fn overhead_factor(&self) -> f64 {
        self.rounds.total.rounds as f64 / self.d_plus_sqrt_n().max(1.0)
    }
}

/// Runs the full pipeline and returns the flow together with the CONGEST
/// round accounting.
///
/// # Errors
///
/// Same error conditions as [`crate::solver::approx_max_flow`].
pub fn distributed_approx_max_flow(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    config: &MaxFlowConfig,
) -> Result<DistributedMaxFlowResult, GraphError> {
    if g.num_nodes() == 0 {
        return Err(GraphError::Empty);
    }
    if !g.is_connected() {
        return Err(GraphError::NotConnected);
    }
    let n = g.num_nodes();
    let sqrt_n = (n as f64).sqrt().ceil() as u64;
    let network = Network::new(g.clone());

    // Phase 1: global BFS tree (real protocol).
    let bfs = build_bfs_tree(&network, s);
    let bfs_depth = bfs.tree.max_depth();
    let bfs_cost = bfs.cost;

    // Phase 2: congestion approximator construction.
    let ensemble = build_tree_ensemble(g, &config.racke)?;
    let mut construction = capprox::sparsify::congest_cost(n, bfs_depth);
    // Low-stretch spanning trees: each cluster-level decomposition round is
    // simulated in O(D + √n) network rounds (Lemma 5.1 / Theorem 3.1).
    let decomposition_rounds = ensemble.stats.decomposition_rounds as u64;
    construction.add_sequential(RoundCost::rounds(
        decomposition_rounds * (bfs_depth as u64 + sqrt_n),
    ));

    // Tree capacities (Lemma 8.3) and the per-iteration aggregations (§9.1):
    // run the real decomposed protocols once per tree and remember the cost.
    let mut rng = ChaCha8Rng::seed_from_u64(config.racke.seed ^ 0x9e3779b97f4a7c15);
    let cut_probability = TreeDecomposition::recommended_probability(n);
    let unit_values = vec![1.0; n];
    let mut per_iteration = RoundCost::ZERO;
    for cap_tree in &ensemble.trees {
        let decomposition = TreeDecomposition::sample(&cap_tree.tree, cut_probability, &mut rng);
        let up = distributed_subtree_sums(
            &network,
            &cap_tree.tree,
            &decomposition,
            &bfs.tree,
            &unit_values,
        );
        let down = distributed_prefix_sums(
            &network,
            &cap_tree.tree,
            &decomposition,
            &bfs.tree,
            &unit_values,
        );
        // Computing |f'| / the tree capacities costs one aggregation per tree
        // during construction (Lemma 8.3).
        construction.add_sequential(up.cost);
        // Each gradient iteration needs the y-values (subtree sums) and the
        // potentials π (downcast) on every tree. The O(log n) trees are
        // evaluated concurrently (their messages are pipelined over shared
        // edges exactly like the k-value aggregations of Lemma 5.1), so the
        // per-iteration round cost is the maximum over trees, not the sum.
        per_iteration.add_parallel(up.cost.then(down.cost));
    }
    // Global scalar aggregations per iteration (φ1, φ2, δ and the step
    // bookkeeping): a constant number of converge/broadcasts on the BFS tree.
    per_iteration.add_sequential(pipelined_broadcast_cost(&bfs.tree, 4));

    // Phase 3: the gradient descent itself (centralized execution of the same
    // arithmetic; the iteration count is what the round bill scales with).
    let approximator = CongestionApproximator::from_ensemble(ensemble);
    let result = approx_max_flow_with(g, &approximator, s, t, config)?;
    let gradient_descent = per_iteration.repeat(result.iterations.max(1) as u64);

    // Phase 4: residual repair — maximum-weight spanning tree (Kutten–Peleg,
    // Õ(√n + D)) plus one aggregation over it to route the leftover demand
    // (Lemma 9.1), measured on the actual tree.
    let logn = (n.max(2) as f64).log2().ceil() as u64;
    let mut repair = RoundCost::rounds((bfs_depth as u64 + sqrt_n) * logn);
    let mst = flowgraph::max_weight_spanning_tree(g, NodeId(0))?;
    let mst_dec = TreeDecomposition::sample(&mst, cut_probability, &mut rng);
    let mst_route = distributed_subtree_sums(&network, &mst, &mst_dec, &bfs.tree, &unit_values);
    repair.add_sequential(mst_route.cost);

    let total = bfs_cost
        .then(construction)
        .then(gradient_descent)
        .then(repair);
    Ok(DistributedMaxFlowResult {
        result,
        rounds: RoundBreakdown {
            bfs_construction: bfs_cost,
            approximator_construction: construction,
            per_iteration,
            gradient_descent,
            repair,
            total,
        },
        bfs_depth,
        num_nodes: n,
        num_edges: g.num_edges(),
    })
}

/// Routes a demand over a rooted spanning tree while accounting the CONGEST
/// cost of doing so with the decomposition technique of Lemma 9.1 (used by
/// the trivial "single spanning tree" baseline in the experiments).
///
/// # Panics
///
/// Panics if the tree is not a spanning subtree of the network graph.
pub fn distributed_tree_routing_cost(
    g: &Graph,
    tree: &RootedTree,
    seed: u64,
) -> (RoundCost, usize) {
    let n = g.num_nodes();
    let network = Network::new(g.clone());
    let bfs = build_bfs_tree(&network, tree.root());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dec = TreeDecomposition::sample(
        tree,
        TreeDecomposition::recommended_probability(n),
        &mut rng,
    );
    let values = vec![1.0; n];
    let run = distributed_subtree_sums(&network, tree, &dec, &bfs.tree, &values);
    (bfs.cost.then(run.cost), bfs.tree.max_depth())
}

#[cfg(test)]
mod tests {
    use super::*;
    use capprox::RackeConfig;
    use flowgraph::gen;

    fn config(trees: usize) -> MaxFlowConfig {
        MaxFlowConfig {
            epsilon: 0.3,
            racke: RackeConfig::default().with_num_trees(trees).with_seed(3),
            ..Default::default()
        }
    }

    #[test]
    fn produces_same_quality_flow_as_centralized() {
        let g = gen::grid(5, 5, 1.0);
        let (s, t) = (NodeId(0), NodeId(24));
        let dist = distributed_approx_max_flow(&g, s, t, &config(4)).unwrap();
        dist.result.flow.validate_st_flow(&g, s, t, 1e-6).unwrap();
        assert!(dist.result.value > 0.0);
        assert!(dist.result.value <= dist.result.upper_bound + 1e-9);
    }

    #[test]
    fn round_breakdown_is_consistent() {
        let g = gen::grid(5, 5, 1.0);
        let dist = distributed_approx_max_flow(&g, NodeId(0), NodeId(24), &config(3)).unwrap();
        let r = &dist.rounds;
        let summed = r
            .bfs_construction
            .then(r.approximator_construction)
            .then(r.gradient_descent)
            .then(r.repair);
        assert_eq!(r.total.rounds, summed.rounds);
        assert!(r.per_iteration.rounds > 0);
        assert!(r.gradient_descent.rounds >= r.per_iteration.rounds);
        assert!(dist.bfs_depth >= 8, "corner BFS on a 5x5 grid has depth 8");
        assert!(dist.overhead_factor() >= 1.0);
    }

    #[test]
    fn per_iteration_cost_is_d_plus_sqrt_n_ish() {
        // The defining property of the distributed implementation (§9.1):
        // one gradient iteration costs Õ(D + √n) rounds, NOT Õ(n) — even on a
        // path, where a naive convergecast over the spanning tree would pay
        // Θ(n) per iteration.
        let g = gen::path(200, 1.0);
        let (s, t) = gen::default_terminals(&g);
        let cfg = MaxFlowConfig {
            max_iterations_per_phase: 5,
            phases: Some(1),
            ..config(3)
        };
        let dist = distributed_approx_max_flow(&g, s, t, &cfg).unwrap();
        let n = g.num_nodes() as f64;
        let d = dist.bfs_depth as f64;
        let budget = 30.0 * (d + n.sqrt()) * (n.log2() + 1.0);
        assert!(
            (dist.rounds.per_iteration.rounds as f64) < budget,
            "per-iteration cost {} exceeds Õ(D + √n) budget {budget}",
            dist.rounds.per_iteration.rounds
        );
    }

    #[test]
    fn tree_routing_cost_helper_runs() {
        let g = gen::path(40, 1.0);
        let tree = flowgraph::spanning::bfs_tree(&g, NodeId(0)).unwrap();
        let (cost, depth) = distributed_tree_routing_cost(&g, &tree, 1);
        assert!(cost.rounds > 0);
        assert_eq!(depth, 39);
    }

    #[test]
    fn rejects_disconnected_graphs() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert!(matches!(
            distributed_approx_max_flow(&g, NodeId(0), NodeId(3), &config(2)),
            Err(GraphError::NotConnected)
        ));
    }
}
