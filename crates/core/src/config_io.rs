//! Textual round-trip for [`MaxFlowConfig`].
//!
//! The workspace's `serde` is an offline compile-surface shim (no registry
//! access), so the derives on [`MaxFlowConfig`] emit nothing. Deployments
//! still need configs in files, and the `#[serde(skip, default)]` contract
//! on the machine-specific parallelism knob needs an executable pin — so
//! this module implements the round-trip the real derive would provide, for
//! exactly the annotated surface:
//!
//! * [`MaxFlowConfig::to_json`] writes every serializable field and **omits
//!   the `#[serde(skip)]` `parallelism` field** — thread counts never travel
//!   between machines;
//! * [`MaxFlowConfig::from_json`] restores skipped fields to their defaults
//!   (a deserialized config runs sequentially until the deployment opts back
//!   in), treats absent fields as their [`MaxFlowConfig::default`] values,
//!   and rejects unknown fields — including an explicit `parallelism` key.
//!
//! Swap this module for real serde once a registry is reachable; the tests
//! in `crates/core/tests/config_roundtrip.rs` pin the semantics either way.

use capprox::{HierarchyConfig, RackeConfig};
use flowgraph::GraphError;

use crate::solver::MaxFlowConfig;

impl MaxFlowConfig {
    /// Serializes the config to a JSON object string. The
    /// `#[serde(skip)]`-annotated `parallelism` field is omitted, matching
    /// the derive contract.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] naming the offending field if
    /// any float in the config is NaN or infinite. Such values have no JSON
    /// representation — an earlier revision emitted `null` for them (the
    /// `serde_json` convention), which produced a *valid* document that
    /// [`MaxFlowConfig::from_json`] then rejected for the required float
    /// fields. Refusing to emit up front keeps the round-trip guarantee
    /// unconditional: every document `to_json` returns parses back.
    pub fn to_json(&self) -> Result<String, GraphError> {
        let finite = |parameter: &'static str, x: f64| -> Result<(), GraphError> {
            if x.is_finite() {
                Ok(())
            } else {
                Err(GraphError::InvalidConfig {
                    parameter,
                    reason: "is not finite: NaN/infinite floats have no JSON representation \
                             and would emit a document from_json rejects",
                })
            }
        };
        finite("epsilon", self.epsilon)?;
        finite("racke.mwu_step", self.racke.mwu_step)?;
        finite("racke.lowstretch_z", self.racke.lowstretch_z)?;
        if let Some(q) = self.racke.target_quality {
            finite("racke.target_quality", q)?;
        }
        if let Some(a) = self.alpha {
            finite("alpha", a)?;
        }
        if let Some(h) = &self.hierarchy {
            finite("hierarchy.beta", h.beta)?;
            finite("hierarchy.sparsify_epsilon", h.sparsify_epsilon)?;
        }
        Ok(format!(
            "{{\"epsilon\":{},\"racke\":{{\"num_trees\":{},\"mwu_step\":{},\"seed\":{},\
             \"lowstretch_z\":{},\"target_quality\":{}}},\"alpha\":{},\
             \"max_iterations_per_phase\":{},\"phases\":{},\"warm_start\":{},\
             \"hierarchy\":{}}}",
            json_f64(self.epsilon),
            opt_usize(self.racke.num_trees),
            json_f64(self.racke.mwu_step),
            self.racke.seed,
            json_f64(self.racke.lowstretch_z),
            self.racke
                .target_quality
                .map_or_else(|| "null".to_string(), json_f64),
            self.alpha.map_or_else(|| "null".to_string(), json_f64),
            self.max_iterations_per_phase,
            opt_usize(self.phases),
            self.warm_start,
            hierarchy_json(self.hierarchy.as_ref()),
        ))
    }

    /// Parses a config previously written by [`MaxFlowConfig::to_json`] (or
    /// by hand). Absent fields keep their [`MaxFlowConfig::default`] values;
    /// skipped fields (`parallelism`) deserialize to their defaults and may
    /// not appear in the document.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] for malformed JSON, unknown or
    /// skipped fields, and out-of-range values. The parsed config is *not*
    /// validated — call [`MaxFlowConfig::validate`] before use, exactly as
    /// with a hand-built config.
    pub fn from_json(text: &str) -> Result<MaxFlowConfig, GraphError> {
        let mut config = MaxFlowConfig::default();
        let mut p = Parser::new(text);
        p.expect_object_start()?;
        while let Some(key) = p.next_key()? {
            match key.as_str() {
                "epsilon" => config.epsilon = p.f64_value()?,
                "alpha" => config.alpha = p.opt_f64_value()?,
                "max_iterations_per_phase" => config.max_iterations_per_phase = p.usize_value()?,
                "phases" => config.phases = p.opt_usize_value()?,
                "warm_start" => config.warm_start = p.bool_value()?,
                "racke" => config.racke = parse_racke(&mut p)?,
                "hierarchy" => config.hierarchy = parse_hierarchy(&mut p)?,
                "parallelism" => {
                    return Err(GraphError::InvalidConfig {
                        parameter: "parallelism",
                        reason: "is #[serde(skip)]: machine-specific thread counts never \
                                 travel in config files (deserialized configs run \
                                 sequentially until the deployment opts back in)",
                    })
                }
                _ => {
                    return Err(GraphError::InvalidConfig {
                        parameter: "json",
                        reason: "unknown field in MaxFlowConfig document",
                    })
                }
            }
        }
        p.expect_end()?;
        Ok(config)
    }
}

fn parse_racke(p: &mut Parser<'_>) -> Result<RackeConfig, GraphError> {
    let mut racke = RackeConfig::default();
    p.expect_object_start()?;
    while let Some(key) = p.next_key()? {
        match key.as_str() {
            "num_trees" => racke.num_trees = p.opt_usize_value()?,
            "mwu_step" => racke.mwu_step = p.f64_value()?,
            "seed" => racke.seed = p.u64_value()?,
            "lowstretch_z" => racke.lowstretch_z = p.f64_value()?,
            "target_quality" => racke.target_quality = p.opt_f64_value()?,
            _ => {
                return Err(GraphError::InvalidConfig {
                    parameter: "json",
                    reason: "unknown field in RackeConfig document",
                })
            }
        }
    }
    Ok(racke)
}

fn hierarchy_json(h: Option<&HierarchyConfig>) -> String {
    let Some(h) = h else {
        return "null".to_string();
    };
    format!(
        "{{\"beta\":{},\"direct_threshold\":{},\"chains\":{},\"trees_per_chain\":{},\
         \"sparsify_epsilon\":{},\"seed\":{},\"max_levels\":{}}}",
        json_f64(h.beta),
        h.direct_threshold,
        h.chains,
        opt_usize(h.trees_per_chain),
        json_f64(h.sparsify_epsilon),
        h.seed,
        h.max_levels,
    )
}

/// `null` or a nested [`HierarchyConfig`] object.
fn parse_hierarchy(p: &mut Parser<'_>) -> Result<Option<HierarchyConfig>, GraphError> {
    if !p.value_is_object() {
        return match p.scalar()? {
            "null" => Ok(None),
            _ => Err(MALFORMED),
        };
    }
    let mut hierarchy = HierarchyConfig::default();
    p.expect_object_start()?;
    while let Some(key) = p.next_key()? {
        match key.as_str() {
            "beta" => hierarchy.beta = p.f64_value()?,
            "direct_threshold" => hierarchy.direct_threshold = p.usize_value()?,
            "chains" => hierarchy.chains = p.usize_value()?,
            "trees_per_chain" => hierarchy.trees_per_chain = p.opt_usize_value()?,
            "sparsify_epsilon" => hierarchy.sparsify_epsilon = p.f64_value()?,
            "seed" => hierarchy.seed = p.u64_value()?,
            "max_levels" => hierarchy.max_levels = p.usize_value()?,
            _ => {
                return Err(GraphError::InvalidConfig {
                    parameter: "json",
                    reason: "unknown field in HierarchyConfig document",
                })
            }
        }
    }
    Ok(Some(hierarchy))
}

fn opt_usize(v: Option<usize>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

/// JSON rendering of an `f64`: `{:?}` round-trips finite values exactly.
/// Non-finite values never reach this point — [`MaxFlowConfig::to_json`]
/// rejects them up front so every emitted document round-trips.
fn json_f64(x: f64) -> String {
    debug_assert!(x.is_finite(), "to_json validated all floats");
    format!("{x:?}")
}

const MALFORMED: GraphError = GraphError::InvalidConfig {
    parameter: "json",
    reason: "malformed MaxFlowConfig document",
};

/// A minimal recursive-descent reader for the flat JSON subset
/// [`MaxFlowConfig::to_json`] emits: objects with string keys and number /
/// null values. Object-valued fields recurse through their own key loop.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Object-nesting bookkeeping: whether the parser is before the first
    /// key of the current object (no comma expected).
    fresh_object: bool,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            fresh_object: false,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Whether the upcoming value starts an object (`{`) rather than a
    /// scalar; consumes nothing.
    fn value_is_object(&mut self) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&b'{')
    }

    fn expect_object_start(&mut self) -> Result<(), GraphError> {
        if self.eat(b'{') {
            self.fresh_object = true;
            Ok(())
        } else {
            Err(MALFORMED)
        }
    }

    /// The next `"key":` of the current object, or `None` at its `}`.
    fn next_key(&mut self) -> Result<Option<String>, GraphError> {
        if self.eat(b'}') {
            self.fresh_object = false;
            return Ok(None);
        }
        if !self.fresh_object && !self.eat(b',') {
            return Err(MALFORMED);
        }
        self.fresh_object = false;
        if !self.eat(b'"') {
            return Err(MALFORMED);
        }
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|&b| b != b'"') {
            self.pos += 1;
        }
        let key = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| MALFORMED)?
            .to_string();
        self.pos += 1; // closing quote
        if !self.eat(b':') {
            return Err(MALFORMED);
        }
        Ok(Some(key))
    }

    /// The raw characters of a number / null scalar.
    fn scalar(&mut self) -> Result<&'a str, GraphError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| !matches!(b, b',' | b'}' | b'{') && !b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(MALFORMED);
        }
        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| MALFORMED)
    }

    fn f64_value(&mut self) -> Result<f64, GraphError> {
        self.scalar()?.parse().map_err(|_| MALFORMED)
    }

    fn u64_value(&mut self) -> Result<u64, GraphError> {
        self.scalar()?.parse().map_err(|_| MALFORMED)
    }

    fn usize_value(&mut self) -> Result<usize, GraphError> {
        self.scalar()?.parse().map_err(|_| MALFORMED)
    }

    fn bool_value(&mut self) -> Result<bool, GraphError> {
        match self.scalar()? {
            "true" => Ok(true),
            "false" => Ok(false),
            _ => Err(MALFORMED),
        }
    }

    fn opt_f64_value(&mut self) -> Result<Option<f64>, GraphError> {
        let s = self.scalar()?;
        if s == "null" {
            Ok(None)
        } else {
            s.parse().map(Some).map_err(|_| MALFORMED)
        }
    }

    fn opt_usize_value(&mut self) -> Result<Option<usize>, GraphError> {
        let s = self.scalar()?;
        if s == "null" {
            Ok(None)
        } else {
            s.parse().map(Some).map_err(|_| MALFORMED)
        }
    }

    fn expect_end(&mut self) -> Result<(), GraphError> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(MALFORMED)
        }
    }
}
