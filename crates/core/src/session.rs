//! Build-once / query-many solver sessions.
//!
//! The paper's pipeline splits naturally into a *prepare* phase and a *query*
//! phase: the congestion approximator (the Räcke ensemble of Lemma 3.3), the
//! maximum-weight spanning tree used for residual repair and the CONGEST tree
//! decompositions (Lemma 8.2) depend only on the graph, while each max-flow
//! query is just `O(α²ε⁻³log²n)` cheap gradient iterations on top of them.
//! [`PreparedMaxFlow`] materializes that split: construction happens once in
//! [`PreparedMaxFlow::prepare`], after which any number of `(s, t)` or
//! demand-vector queries run against the cached structures — and, thanks to
//! the session-owned scratch buffers, with zero heap allocation per gradient
//! iteration in the steady state.
//!
//! The free functions [`crate::approx_max_flow`] / [`crate::route_demand`]
//! remain as thin convenience wrappers that prepare a throwaway session per
//! call; a session answers byte-identically to them for the same seed.

use std::collections::HashMap;

use capprox::{
    build_tree_ensemble, CapacityChange, CapacityUpdateStats, CongestionApproximator, EnsembleStats,
};
use flowgraph::{max_weight_spanning_tree, Demand, Graph, GraphError, NodeId, RootedTree};
use parallel::Parallelism;

use crate::almost_route::{AlmostRouteScratch, BlockScratch};
use crate::distributed::DistributedPlan;
use crate::solver::{
    max_flow_block_engine, max_flow_engine, route_demand_block_engine, route_demand_engine,
    MaxFlowConfig, MaxFlowResult, RoutingResult, WarmCache,
};

/// Lanes advanced in lockstep per blocked gradient engine call: every batched
/// entry point splits its queries into blocks of this many demands and walks
/// the operator structures once per block instead of once per query. The
/// value trades bandwidth amortization against per-lane scratch footprint;
/// results are byte-identical for every block size, so it is purely a
/// performance knob. Four lanes measured fastest on 10k-node instances;
/// past ~10^5 nodes the lane-major working set of the soft-max and random
/// slot-gather sweeps outgrows the cache hierarchy and two lanes win, so
/// the width adapts to the graph size.
const BLOCK_LANES: usize = 4;

/// Node count above which [`block_lanes`] narrows the block width.
const BLOCK_LANES_LARGE_N: usize = 1 << 17;

/// Lane width for a graph with `n` nodes (see [`BLOCK_LANES`]).
const fn block_lanes(n: usize) -> usize {
    if n >= BLOCK_LANES_LARGE_N {
        2
    } else {
        BLOCK_LANES
    }
}

/// A prepared max-flow solver session: the congestion approximator, repair
/// tree and scratch buffers are built once, then arbitrarily many queries are
/// answered against them.
///
/// Queries take `&mut self` because they reuse the session's scratch buffers;
/// results are independent of query order and of how often the session has
/// been used (every query is answered byte-identically to a fresh one-shot
/// [`crate::approx_max_flow`] call with the same config).
///
/// The prepared structures themselves (graph, approximator, repair tree) are
/// immutable and `Send + Sync`; only the scratch is per-worker state. That is
/// what lets [`Self::par_max_flow_batch`] run independent `(s, t)` queries
/// concurrently — each worker borrows the shared structures and owns one
/// scratch from the session's pool — while staying byte-identical to the
/// sequential [`Self::max_flow_batch`].
///
/// # Example
///
/// ```
/// use flowgraph::{gen, NodeId};
/// use maxflow::{MaxFlowConfig, Parallelism, PreparedMaxFlow};
///
/// let g = gen::grid(5, 5, 1.0);
/// let mut session = PreparedMaxFlow::prepare(&g, &MaxFlowConfig::default()).unwrap();
/// let a = session.max_flow(NodeId(0), NodeId(24)).unwrap();
/// let b = session.max_flow(NodeId(4), NodeId(20)).unwrap();
/// assert!(a.value > 0.0 && b.value > 0.0);
///
/// // Opt into parallel execution: 4 workers answer a batch concurrently,
/// // byte-identical to the sequential batch (and to threads = 1).
/// let cfg = MaxFlowConfig::default().with_parallelism(Parallelism::with_threads(4));
/// let mut par_session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
/// let pairs = [(NodeId(0), NodeId(24)), (NodeId(4), NodeId(20))];
/// let batch = par_session.par_max_flow_batch(&pairs).unwrap();
/// assert_eq!(batch[0].value.to_bits(), a.value.to_bits());
/// assert_eq!(batch[1].value.to_bits(), b.value.to_bits());
/// ```
#[derive(Debug)]
pub struct PreparedMaxFlow<'g> {
    graph: &'g Graph,
    pub(crate) parts: PreparedParts,
}

/// The owned prepared state of a session, detached from the graph borrow:
/// everything [`PreparedMaxFlow`] derives from the graph (approximator,
/// repair tree, scratch pools, warm cache), without the `&Graph` itself.
///
/// A [`PreparedMaxFlow`] is exactly `(&Graph, PreparedParts)` — split with
/// [`PreparedMaxFlow::into_parts`], rejoin with
/// [`PreparedMaxFlow::from_parts`]. The split is what lets a long-lived
/// server *own* a mutable graph alongside its prepared state without a
/// self-referential struct: between requests the server holds
/// `(Graph, PreparedParts)`; to answer a batch it borrows the graph and
/// rejoins the parts into a session; to apply capacity updates it mutates
/// the graph and calls [`Self::refresh_after_capacity_update`].
///
/// Round-tripping through `into_parts`/`from_parts` preserves every byte of
/// session state (scratch warmth, warm-start cache, distributed plan), so
/// answers are byte-identical to an undisturbed session.
#[derive(Debug)]
pub struct PreparedParts {
    config: MaxFlowConfig,
    approximator: CongestionApproximator,
    ensemble_stats: EnsembleStats,
    repair_tree: RootedTree,
    scratch: AlmostRouteScratch,
    /// Lane-major scratch for the blocked batch entry points, grown lazily
    /// and reused across batches.
    block_scratch: BlockScratch,
    /// Per-worker blocked scratch buffers for
    /// [`PreparedMaxFlow::par_max_flow_batch`], grown lazily to the
    /// configured thread count and reused across batches.
    block_pool: Vec<BlockScratch>,
    /// The last answered query, kept to warm-start the next one when
    /// [`MaxFlowConfig::warm_start`] is enabled (always `None` otherwise).
    warm_cache: Option<WarmCache>,
    pub(crate) plan: Option<DistributedPlan>,
}

impl PreparedParts {
    /// Builds the prepared state for `graph`: validates the config and the
    /// graph, constructs the congestion approximator (the expensive part)
    /// and the maximum-weight spanning tree for residual repair, and
    /// pre-sizes the per-query scratch buffers.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] for configurations that could
    /// never produce a meaningful run (see [`MaxFlowConfig::validate`]) and
    /// [`GraphError::Empty`] / [`GraphError::NotConnected`] /
    /// [`GraphError::NoEdges`] for degenerate graphs.
    pub fn build(graph: &Graph, config: &MaxFlowConfig) -> Result<Self, GraphError> {
        config.validate()?;
        if graph.num_nodes() == 0 {
            return Err(GraphError::Empty);
        }
        if !graph.is_connected() {
            return Err(GraphError::NotConnected);
        }
        if graph.num_edges() == 0 {
            // A connected graph without edges is a single node; there is
            // nothing to route and the gradient potential is undefined on an
            // empty edge set (see `almost_route::smax`).
            return Err(GraphError::NoEdges);
        }
        // The scalable preparation path assembles the ensemble level by
        // level through the recursive j-tree hierarchy (Theorem 8.10); the
        // default path builds the Räcke ensemble directly on the graph.
        let (ensemble, hierarchy_stats) = match &config.hierarchy {
            Some(hierarchy) => {
                let (ensemble, stats) =
                    capprox::build_hierarchical_ensemble(graph, hierarchy, &config.racke)?;
                (ensemble, Some(stats))
            }
            None => (build_tree_ensemble(graph, &config.racke)?, None),
        };
        let ensemble_stats = ensemble.stats.clone();
        let approximator = match hierarchy_stats {
            Some(stats) => CongestionApproximator::from_ensemble_with_hierarchy(ensemble, stats)?,
            None => CongestionApproximator::from_ensemble(ensemble)?,
        };
        let repair_tree = max_weight_spanning_tree(graph, NodeId(0))?;
        let scratch = AlmostRouteScratch::for_instance(graph, &approximator);
        Ok(PreparedParts {
            config: config.clone(),
            approximator,
            ensemble_stats,
            repair_tree,
            scratch,
            block_scratch: BlockScratch::default(),
            block_pool: Vec::new(),
            warm_cache: None,
            plan: None,
        })
    }

    /// Node count of the graph these parts were prepared for.
    pub fn num_nodes(&self) -> usize {
        self.approximator.num_nodes()
    }

    /// The solver configuration the parts were built with.
    pub fn config(&self) -> &MaxFlowConfig {
        &self.config
    }

    /// The prepared congestion approximator.
    pub fn approximator(&self) -> &CongestionApproximator {
        &self.approximator
    }

    /// Re-prepares the parts in place after a batch of edge-capacity changes
    /// on the graph, without rebuilding the tree ensemble: the approximator's
    /// cut capacities are patched incrementally along the changed edges' tree
    /// paths ([`CongestionApproximator::update_capacities`] — work
    /// proportional to the paths, not to the graph), the repair tree is
    /// re-grown against the new capacities (it is a maximum-*weight*
    /// spanning tree, so its shape may legitimately change), and
    /// capacity-dependent caches (warm-start flow, distributed plan) are
    /// dropped.
    ///
    /// `graph` must already hold the new capacities (apply
    /// [`Graph::set_capacity`] first) and be the same graph the parts were
    /// prepared for, topologically: same nodes, same edges, only capacities
    /// changed.
    ///
    /// After a successful refresh, queries through a rejoined
    /// [`PreparedMaxFlow`] answer byte-identically to a session freshly
    /// prepared from an ensemble with the *same tree topologies* at the new
    /// capacities — but **not** necessarily to a full
    /// [`PreparedMaxFlow::prepare`], which re-samples the ensemble and may
    /// draw different trees. Both are valid `(1+ε)` certificates; the
    /// equivalence suites pin the former.
    ///
    /// # Errors
    ///
    /// Propagates [`CongestionApproximator::update_capacities`] errors, after
    /// which the parts may be partially patched and **must be discarded and
    /// rebuilt** with [`Self::build`] — the caller's full-rebuild fallback.
    pub fn refresh_after_capacity_update(
        &mut self,
        graph: &Graph,
        changes: &[CapacityChange],
    ) -> Result<CapacityUpdateStats, GraphError> {
        let stats = self.approximator.update_capacities(graph, changes)?;
        self.repair_tree = max_weight_spanning_tree(graph, NodeId(0))?;
        // Both caches embed flows scaled against the old capacities; a warm
        // start from a stale flow would change answers, and the distributed
        // plan's congestion accounting would be wrong.
        self.warm_cache = None;
        self.plan = None;
        Ok(stats)
    }
}

impl<'g> PreparedMaxFlow<'g> {
    /// Builds the session: [`PreparedParts::build`] plus the graph borrow.
    ///
    /// # Errors
    ///
    /// See [`PreparedParts::build`].
    pub fn prepare(graph: &'g Graph, config: &MaxFlowConfig) -> Result<Self, GraphError> {
        Ok(PreparedMaxFlow {
            graph,
            parts: PreparedParts::build(graph, config)?,
        })
    }

    /// Rejoins owned [`PreparedParts`] with the graph they were prepared for
    /// (the inverse of [`Self::into_parts`]).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DemandMismatch`] when `graph`'s node count does
    /// not match the parts' — the strongest structural check available
    /// without storing a full graph fingerprint; pairing parts with the
    /// wrong same-sized graph is on the caller (a server keys parts by graph
    /// fingerprint for exactly this reason).
    pub fn from_parts(graph: &'g Graph, parts: PreparedParts) -> Result<Self, GraphError> {
        if parts.num_nodes() != graph.num_nodes() {
            return Err(GraphError::DemandMismatch {
                expected: parts.num_nodes(),
                actual: graph.num_nodes(),
            });
        }
        Ok(PreparedMaxFlow { graph, parts })
    }

    /// Releases the graph borrow and returns the owned prepared state,
    /// preserving every byte of it (scratch warmth, warm cache, plan).
    pub fn into_parts(self) -> PreparedParts {
        self.parts
    }

    /// Computes a `(1+ε)`-approximate maximum s–t flow using the prepared
    /// structures (Theorem 1.1, centralized execution).
    ///
    /// With [`MaxFlowConfig::warm_start`] enabled, the session additionally
    /// remembers this query's routing and seeds the next query's descent with
    /// it when the terminal pair repeats (in either orientation).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] / [`GraphError::SelfLoop`] for
    /// invalid terminals.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> Result<MaxFlowResult, GraphError> {
        max_flow_engine(
            self.graph,
            &self.parts.approximator,
            &self.parts.repair_tree,
            s,
            t,
            &self.parts.config,
            &mut self.parts.scratch,
            Some(&mut self.parts.warm_cache),
        )
    }

    /// Answers a batch of s–t queries through the blocked multi-demand
    /// gradient engine: the pairs are split into blocks of up to 8 lanes and
    /// every gradient iteration of a block walks the operator structures
    /// (tree slots, edge lists, soft-max buffers) **once for all lanes**,
    /// which is what makes large-graph serving memory-bandwidth-efficient.
    ///
    /// With [`MaxFlowConfig::warm_start`] **off** (the default), the answers
    /// are byte-identical to calling [`Self::max_flow`] once per pair in
    /// order (and tested to be exactly that) — the blocked engine preserves
    /// each lane's floating-point sequence exactly.
    ///
    /// With warm starts **on**, the batch warms each query from the previous
    /// answer for the *same terminal pair* (in either orientation) within
    /// this batch: repeated pairs form per-pair chains, and chain links are
    /// processed in waves so unrelated queries can share a block. Answers
    /// equal replaying each pair's chain on a fresh session (also pinned by
    /// tests), and the batch neither reads nor writes the session's
    /// single-query warm slot — interleave [`Self::max_flow`] calls freely.
    ///
    /// # Errors
    ///
    /// Fails fast with the earliest offending pair's error; no partial
    /// results are returned.
    pub fn max_flow_batch(
        &mut self,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Vec<MaxFlowResult>, GraphError> {
        self.blocked_batch(pairs, 1)
    }

    /// [`Self::max_flow_batch`] with the blocks of a batch fanned across the
    /// workers of the session's configured [`MaxFlowConfig::parallelism`]:
    /// worker `w` answers blocks `w, w + T, w + 2T, …` against the shared
    /// prepared structures using its own blocked scratch from the session
    /// pool, so no mutable state is shared between workers. Threads
    /// parallelize **across** blocks while the lanes of each block amortize
    /// the operator walks **within** it; results are **byte-identical** to
    /// the sequential batch (in order) for any thread count — including under
    /// [`MaxFlowConfig::warm_start`], where the waves of each per-pair chain
    /// are barriers: all blocks of a wave finish before the next wave starts,
    /// so every warm flow is ready regardless of worker scheduling.
    ///
    /// Query fan-out and operator fan-out do not nest: batch workers run
    /// their blocks with sequential operator evaluations, so the thread
    /// count is `T`, not `T²`.
    ///
    /// # Errors
    ///
    /// On invalid pairs, returns the error of the earliest offending pair —
    /// the same error [`Self::max_flow_batch`] fails fast with (the parallel
    /// form may have computed later queries before reporting it).
    pub fn par_max_flow_batch(
        &mut self,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Vec<MaxFlowResult>, GraphError> {
        let blocks = pairs.len().div_ceil(block_lanes(self.graph.num_nodes()));
        let workers = self.parts.config.parallelism.threads().min(blocks.max(1));
        self.blocked_batch(pairs, workers)
    }

    /// Routes `k` independent demand vectors — a multi-commodity traffic
    /// matrix — through the blocked gradient engine in one call: the demands
    /// advance in lockstep, sharing every operator walk, and each commodity's
    /// flow is byte-identical to routing it alone with [`Self::route`].
    ///
    /// Each demand is routed on the *original* capacities (the commodities
    /// do not compete for capacity); superimpose the returned flows and scale
    /// by the combined congestion for a feasible concurrent routing.
    ///
    /// ```
    /// use flowgraph::{gen, Demand, NodeId};
    /// use maxflow::{MaxFlowConfig, PreparedMaxFlow};
    ///
    /// let g = gen::grid(5, 5, 1.0);
    /// let mut session = PreparedMaxFlow::prepare(&g, &MaxFlowConfig::default()).unwrap();
    /// // Three commodities, routed together in one blocked call.
    /// let matrix = [
    ///     Demand::st(&g, NodeId(0), NodeId(24), 1.0),
    ///     Demand::st(&g, NodeId(4), NodeId(20), 0.5),
    ///     Demand::st(&g, NodeId(2), NodeId(22), 0.25),
    /// ];
    /// let routed = session.route_many(&matrix).unwrap();
    /// assert_eq!(routed.len(), 3);
    /// for (b, r) in matrix.iter().zip(&routed) {
    ///     // Each flow meets its commodity's demand exactly.
    ///     let excess = r.flow.excess(&g);
    ///     for v in g.nodes() {
    ///         assert!((excess[v.index()] - b.get(v)).abs() < 1e-6);
    ///     }
    /// }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DemandMismatch`] for the earliest demand that
    /// does not cover exactly the graph's nodes.
    pub fn route_many(&mut self, demands: &[Demand]) -> Result<Vec<RoutingResult>, GraphError> {
        let mut results = Vec::with_capacity(demands.len());
        for chunk in demands.chunks(block_lanes(self.graph.num_nodes())) {
            let refs: Vec<&Demand> = chunk.iter().collect();
            let warms = vec![None; chunk.len()];
            results.extend(route_demand_block_engine(
                self.graph,
                &self.parts.approximator,
                &self.parts.repair_tree,
                &refs,
                &self.parts.config,
                &mut self.parts.block_scratch,
                &warms,
            )?);
        }
        Ok(results)
    }

    /// The shared batched query driver behind [`Self::max_flow_batch`]
    /// (`workers == 1`) and [`Self::par_max_flow_batch`] (`workers > 1`).
    ///
    /// Without warm starts the whole batch is one wave of independent
    /// blocks. With warm starts, occurrence `w` of every (orientation-
    /// normalized) terminal pair lands in wave `w`: the waves run in order
    /// with a barrier between them, each query warms from its pair's answer
    /// in the previous wave through a batch-scoped map, and an answer is
    /// kept in the map only while a later occurrence still needs it. Every
    /// per-pair error surfaces in wave 0 (errors do not depend on warm
    /// state), so a failed batch never leaves half-finished waves behind.
    fn blocked_batch(
        &mut self,
        pairs: &[(NodeId, NodeId)],
        workers: usize,
    ) -> Result<Vec<MaxFlowResult>, GraphError> {
        if pairs.is_empty() {
            return Ok(Vec::new());
        }
        let key_of = |s: NodeId, t: NodeId| {
            if s.index() <= t.index() {
                (s, t)
            } else {
                (t, s)
            }
        };
        // Wave index and keep-for-later flag per query. Without warm starts
        // nothing is warmed or stored, and a single wave holds everything.
        let mut occurrence = vec![0usize; pairs.len()];
        let mut store = vec![false; pairs.len()];
        let mut num_waves = 1usize;
        if self.parts.config.warm_start {
            let mut chains: HashMap<(NodeId, NodeId), Vec<usize>> = HashMap::new();
            for (i, &(s, t)) in pairs.iter().enumerate() {
                chains.entry(key_of(s, t)).or_default().push(i);
            }
            for chain in chains.values() {
                num_waves = num_waves.max(chain.len());
                for (j, &i) in chain.iter().enumerate() {
                    occurrence[i] = j;
                    store[i] = j + 1 < chain.len();
                }
            }
        }

        let mut warm_map: HashMap<(NodeId, NodeId), WarmCache> = HashMap::new();
        let mut out: Vec<Option<MaxFlowResult>> = (0..pairs.len()).map(|_| None).collect();
        for wave in 0..num_waves {
            let lanes: Vec<usize> = (0..pairs.len())
                .filter(|&i| occurrence[i] == wave)
                .collect();
            // Per-block inputs: lane indices, pairs, warm flows from the
            // previous wave, and keep flags.
            type BlockInput<'a> = (
                &'a [usize],
                Vec<(NodeId, NodeId)>,
                Vec<Option<&'a WarmCache>>,
                Vec<bool>,
            );
            let blocks: Vec<BlockInput> = lanes
                .chunks(block_lanes(self.graph.num_nodes()))
                .map(|block| {
                    let block_pairs: Vec<_> = block.iter().map(|&i| pairs[i]).collect();
                    let warm_in: Vec<_> = block
                        .iter()
                        .map(|&i| warm_map.get(&key_of(pairs[i].0, pairs[i].1)))
                        .collect();
                    let block_store: Vec<_> = block.iter().map(|&i| store[i]).collect();
                    (block, block_pairs, warm_in, block_store)
                })
                .collect();

            // One block's answers with each lane's fresh warm entry — or the
            // block index whose earliest lane failed. Blocks partition the
            // wave's lanes in ascending index ranges and the engine fails
            // fast on its earliest lane, so the earliest failing block holds
            // the batch's earliest error.
            type BlockAnswers = Vec<(usize, MaxFlowResult, Option<WarmCache>)>;
            let mut answered: Vec<(usize, BlockAnswers)> = Vec::with_capacity(blocks.len());
            if workers <= 1 {
                for (bi, (block, block_pairs, warm_in, block_store)) in blocks.iter().enumerate() {
                    let (results, warm_out) = max_flow_block_engine(
                        self.graph,
                        &self.parts.approximator,
                        &self.parts.repair_tree,
                        block_pairs,
                        &self.parts.config,
                        &mut self.parts.block_scratch,
                        warm_in,
                        block_store,
                    )?;
                    answered.push((
                        bi,
                        block
                            .iter()
                            .zip(results.into_iter().zip(warm_out))
                            .map(|(&i, (result, warm))| (i, result, warm))
                            .collect(),
                    ));
                }
            } else {
                let worker_config = self
                    .parts
                    .config
                    .clone()
                    .with_parallelism(Parallelism::sequential());
                while self.parts.block_pool.len() < workers {
                    self.parts.block_pool.push(BlockScratch::default());
                }
                let graph = self.graph;
                let approximator = &self.parts.approximator;
                let repair_tree = &self.parts.repair_tree;
                let blocks = &blocks;
                type WorkerStripe = Result<Vec<(usize, BlockAnswers)>, (usize, GraphError)>;
                let tasks: Vec<&mut BlockScratch> =
                    self.parts.block_pool[..workers].iter_mut().collect();
                let partials: Vec<WorkerStripe> = parallel::join_workers(tasks, |w, scratch| {
                    let mut mine = Vec::with_capacity(blocks.len().div_ceil(workers));
                    for (bi, (block, block_pairs, warm_in, block_store)) in
                        blocks.iter().enumerate().skip(w).step_by(workers)
                    {
                        match max_flow_block_engine(
                            graph,
                            approximator,
                            repair_tree,
                            block_pairs,
                            &worker_config,
                            scratch,
                            warm_in,
                            block_store,
                        ) {
                            Ok((results, warm_out)) => mine.push((
                                bi,
                                block
                                    .iter()
                                    .zip(results.into_iter().zip(warm_out))
                                    .map(|(&i, (result, warm))| (i, result, warm))
                                    .collect(),
                            )),
                            Err(err) => return Err((bi, err)),
                        }
                    }
                    Ok(mine)
                });
                if let Some((_, err)) = partials
                    .iter()
                    .filter_map(|p| p.as_ref().err())
                    .min_by_key(|(bi, _)| *bi)
                {
                    return Err(err.clone());
                }
                for partial in partials {
                    // The error scan above returned on any Err stripe; a
                    // stripe that still fails here is a bookkeeping bug,
                    // reported as a typed error so a daemon worker thread
                    // fails the request instead of aborting the process.
                    answered.extend(partial.map_err(|_| GraphError::Internal {
                        invariant: "parallel batch stripe failed after the error scan",
                    })?);
                }
            }

            for (_, block_answers) in answered {
                for (i, result, warm) in block_answers {
                    let key = key_of(pairs[i].0, pairs[i].1);
                    match warm {
                        // The engine only produces an entry for store-flagged
                        // lanes; dropping the map entry after a chain's last
                        // link keeps the map's footprint at one flow per
                        // *open* chain.
                        Some(w) => {
                            warm_map.insert(key, w);
                        }
                        None => {
                            warm_map.remove(&key);
                        }
                    }
                    out[i] = Some(result);
                }
            }
        }
        // Every wave assigns each of its lane indices to exactly one block,
        // so every slot must be filled; an unanswered slot is a wave/block
        // partitioning bug, surfaced as a typed error (never a panic — see
        // above).
        out.into_iter()
            .map(|r| {
                r.ok_or(GraphError::Internal {
                    invariant: "batch left a query unanswered",
                })
            })
            .collect()
    }

    /// Routes an arbitrary balanced demand vector with near-optimal
    /// congestion (Algorithm 1 without the max-flow scaling), using the
    /// prepared structures.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DemandMismatch`] if `b` does not cover exactly
    /// the graph's nodes.
    pub fn route(&mut self, b: &Demand) -> Result<RoutingResult, GraphError> {
        route_demand_engine(
            self.graph,
            &self.parts.approximator,
            &self.parts.repair_tree,
            b,
            &self.parts.config,
            &mut self.parts.scratch,
            None,
        )
    }

    /// The graph this session was prepared for.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The session's solver configuration.
    pub fn config(&self) -> &MaxFlowConfig {
        &self.parts.config
    }

    /// The prepared congestion approximator.
    pub fn approximator(&self) -> &CongestionApproximator {
        &self.parts.approximator
    }

    /// Construction statistics of the underlying tree ensemble.
    pub fn ensemble_stats(&self) -> &EnsembleStats {
        &self.parts.ensemble_stats
    }

    /// The maximum-weight spanning tree used for residual repair.
    pub fn repair_tree(&self) -> &RootedTree {
        &self.parts.repair_tree
    }
}

// A session must be shareable across threads for the distributed serving
// posture (worker pools borrowing one prepared session's structures); pin it
// at compile time so a future field can't silently revoke it.
const _: fn() = parallel::assert_send_sync::<PreparedMaxFlow<'static>>;

#[cfg(test)]
mod tests {
    use super::*;
    use capprox::RackeConfig;
    use flowgraph::gen;

    fn config() -> MaxFlowConfig {
        MaxFlowConfig::default()
            .with_epsilon(0.2)
            .with_racke(RackeConfig::default().with_num_trees(6).with_seed(11))
            .with_phases(Some(2))
            .with_max_iterations_per_phase(2_000)
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn session_matches_one_shot_byte_for_byte() {
        let g = gen::grid(5, 5, 1.0);
        let cfg = config();
        let one_shot = crate::approx_max_flow(&g, NodeId(0), NodeId(24), &cfg).unwrap();
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let ses = session.max_flow(NodeId(0), NodeId(24)).unwrap();
        assert_eq!(one_shot.value.to_bits(), ses.value.to_bits());
        assert_eq!(one_shot.upper_bound.to_bits(), ses.upper_bound.to_bits());
        assert_eq!(one_shot.iterations, ses.iterations);
        assert_eq!(bits(one_shot.flow.values()), bits(ses.flow.values()));
    }

    #[test]
    fn repeated_queries_are_deterministic() {
        // The scratch reuse must not leak state between queries: asking the
        // same question twice (with another query in between) gives the same
        // bytes.
        let g = gen::Family::Random.generate(30, 5);
        let mut session = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        let first = session.max_flow(NodeId(0), NodeId(29)).unwrap();
        let _interleaved = session.max_flow(NodeId(3), NodeId(17)).unwrap();
        let second = session.max_flow(NodeId(0), NodeId(29)).unwrap();
        assert_eq!(first.value.to_bits(), second.value.to_bits());
        assert_eq!(bits(first.flow.values()), bits(second.flow.values()));
    }

    #[test]
    fn batch_equals_query_loop() {
        let g = gen::grid(4, 4, 1.0);
        let cfg = config();
        let pairs = [
            (NodeId(0), NodeId(15)),
            (NodeId(3), NodeId(12)),
            (NodeId(0), NodeId(15)),
        ];
        let mut batch_session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let batch = batch_session.max_flow_batch(&pairs).unwrap();
        let mut loop_session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        for (b, &(s, t)) in batch.iter().zip(&pairs) {
            let l = loop_session.max_flow(s, t).unwrap();
            assert_eq!(b.value.to_bits(), l.value.to_bits());
            assert_eq!(bits(b.flow.values()), bits(l.flow.values()));
        }
    }

    #[test]
    fn par_batch_equals_sequential_batch_byte_for_byte() {
        let g = gen::Family::Random.generate(24, 9);
        let pairs = [
            (NodeId(0), NodeId(23)),
            (NodeId(5), NodeId(11)),
            (NodeId(23), NodeId(0)),
            (NodeId(2), NodeId(19)),
            (NodeId(7), NodeId(13)),
        ];
        let mut seq_session = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        let seq = seq_session.max_flow_batch(&pairs).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let cfg = config().with_parallelism(Parallelism::with_threads(threads));
            let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
            let par = session.par_max_flow_batch(&pairs).unwrap();
            assert_eq!(par.len(), seq.len());
            for (p, s) in par.iter().zip(&seq) {
                assert_eq!(p.value.to_bits(), s.value.to_bits(), "{threads} threads");
                assert_eq!(bits(p.flow.values()), bits(s.flow.values()));
                assert_eq!(p.iterations, s.iterations);
            }
            // A second batch through the warm pool is also byte-identical.
            let again = session.par_max_flow_batch(&pairs).unwrap();
            for (p, s) in again.iter().zip(&seq) {
                assert_eq!(p.value.to_bits(), s.value.to_bits());
            }
        }
    }

    #[test]
    fn par_batch_reports_earliest_pair_error() {
        let g = gen::grid(4, 4, 1.0);
        let cfg = config().with_parallelism(Parallelism::with_threads(4));
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let pairs = [
            (NodeId(0), NodeId(15)),
            (NodeId(3), NodeId(99)), // out of range: the earliest error
            (NodeId(7), NodeId(7)),  // self loop, later in the batch
        ];
        assert!(matches!(
            session.par_max_flow_batch(&pairs),
            Err(GraphError::NodeOutOfRange { node: 99, .. })
        ));
    }

    #[test]
    fn parts_round_trip_preserves_session_state_bitwise() {
        // into_parts/from_parts is the daemon's steady-state loop; splitting
        // and rejoining between every query must not perturb a bit, including
        // under warm starts (the warm cache rides along in the parts).
        let g = gen::Family::Random.generate(26, 7);
        let cfg = config().with_warm_start(true);
        let mut undisturbed = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let mut parts = PreparedParts::build(&g, &cfg).unwrap();
        let queries = [
            (NodeId(0), NodeId(25)),
            (NodeId(3), NodeId(17)),
            (NodeId(0), NodeId(25)), // warm repeat
        ];
        for &(s, t) in &queries {
            let expected = undisturbed.max_flow(s, t).unwrap();
            let mut session = PreparedMaxFlow::from_parts(&g, parts).unwrap();
            let got = session.max_flow(s, t).unwrap();
            parts = session.into_parts();
            assert_eq!(expected.value.to_bits(), got.value.to_bits());
            assert_eq!(expected.iterations, got.iterations);
            assert_eq!(bits(expected.flow.values()), bits(got.flow.values()));
        }
    }

    #[test]
    fn from_parts_rejects_a_mismatched_graph() {
        let g = gen::grid(4, 4, 1.0);
        let parts = PreparedParts::build(&g, &config()).unwrap();
        let other = gen::grid(3, 3, 1.0);
        assert!(matches!(
            PreparedMaxFlow::from_parts(&other, parts),
            Err(GraphError::DemandMismatch {
                expected: 16,
                actual: 9
            })
        ));
    }

    #[test]
    fn refresh_after_capacity_update_matches_fresh_prepare_on_a_path() {
        // A path has exactly one spanning tree, so the re-sampled ensemble of
        // a fresh prepare() and the kept ensemble of the incremental refresh
        // have identical topologies — and with integer capacities the cut
        // sums are exact, so the two sessions must answer BITWISE equal.
        // (General graphs re-sample different trees; the capprox suites pin
        // the same-topology equivalence there.)
        let mut g = gen::path(12, 4.0);
        let mut parts = PreparedParts::build(&g, &config()).unwrap();
        let e = g.edge_ids().nth(5).unwrap();
        g.set_capacity(e, 2.0).unwrap();
        let stats = parts
            .refresh_after_capacity_update(
                &g,
                &[capprox::CapacityChange {
                    edge: e,
                    old: 4.0,
                    new: 2.0,
                }],
            )
            .unwrap();
        assert!(stats.trees_touched >= 1 && stats.slots_patched >= 1);
        let mut refreshed = PreparedMaxFlow::from_parts(&g, parts).unwrap();
        let mut fresh = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        let a = refreshed.max_flow(NodeId(0), NodeId(11)).unwrap();
        let b = fresh.max_flow(NodeId(0), NodeId(11)).unwrap();
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(a.upper_bound.to_bits(), b.upper_bound.to_bits());
        assert_eq!(bits(a.flow.values()), bits(b.flow.values()));
        // The bottleneck the update created is certified by the bracket.
        assert!(a.value <= 2.0 + 1e-9 && a.upper_bound >= 2.0 - 1e-9);
    }

    #[test]
    fn refresh_rejects_stale_graph_capacities() {
        // The graph must already hold the new capacities; refresh with a
        // stale graph is the misuse the typed error (and the daemon's full-
        // rebuild fallback) exists for.
        let g = gen::grid(4, 4, 1.0);
        let mut parts = PreparedParts::build(&g, &config()).unwrap();
        let e = g.edge_ids().next().unwrap();
        assert!(matches!(
            parts.refresh_after_capacity_update(
                &g,
                &[capprox::CapacityChange {
                    edge: e,
                    old: 1.0,
                    new: 5.0,
                }],
            ),
            Err(GraphError::InvalidConfig {
                parameter: "changes",
                ..
            })
        ));
    }

    #[test]
    fn partial_answers_are_discarded_and_the_session_survives() {
        // The partial-answer path: with two workers striping the blocks,
        // worker 0's blocks (0, 2) complete with real answers while worker
        // 1's block 1 holds the invalid pair. The completed stripes' partial
        // answers must be discarded behind a typed error — never a panic and
        // never a half-filled result vector — and the session must stay
        // fully usable (warm pool, scratch, and determinism intact).
        let g = gen::grid(4, 4, 1.0);
        let cfg = config().with_parallelism(Parallelism::with_threads(2));
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        // block_lanes is 4 at this size: three blocks of four lanes. The
        // single bad pair lands in block 1 (lane 6).
        let good = [
            (NodeId(0), NodeId(15)),
            (NodeId(3), NodeId(12)),
            (NodeId(1), NodeId(14)),
            (NodeId(2), NodeId(13)),
            (NodeId(4), NodeId(11)),
            (NodeId(5), NodeId(10)),
            (NodeId(6), NodeId(9)),
            (NodeId(7), NodeId(8)),
            (NodeId(0), NodeId(10)),
            (NodeId(5), NodeId(15)),
            (NodeId(3), NodeId(9)),
            (NodeId(1), NodeId(11)),
        ];
        let mut poisoned = good;
        poisoned[6] = (NodeId(6), NodeId(77)); // out of range, block 1
        match session.par_max_flow_batch(&poisoned) {
            Err(GraphError::NodeOutOfRange { node: 77, .. }) => {}
            other => panic!("expected NodeOutOfRange for node 77, got {other:?}"),
        }
        // The failed batch left no residue: the same session answers the
        // all-valid batch byte-identically to a fresh sequential session.
        let after = session.par_max_flow_batch(&good).unwrap();
        let mut fresh = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        let reference = fresh.max_flow_batch(&good).unwrap();
        assert_eq!(after.len(), reference.len());
        for (a, r) in after.iter().zip(&reference) {
            assert_eq!(a.value.to_bits(), r.value.to_bits());
            assert_eq!(bits(a.flow.values()), bits(r.flow.values()));
        }
    }

    #[test]
    fn invalid_configs_are_rejected_at_prepare() {
        let g = gen::grid(3, 3, 1.0);
        for (cfg, parameter) in [
            (config().with_epsilon(0.0), "epsilon"),
            (config().with_epsilon(-1.0), "epsilon"),
            (config().with_epsilon(f64::NAN), "epsilon"),
            (
                config().with_max_iterations_per_phase(0),
                "max_iterations_per_phase",
            ),
            (config().with_phases(Some(0)), "phases"),
            (
                config().with_racke(RackeConfig::default().with_num_trees(0)),
                "racke.num_trees",
            ),
            (config().with_alpha(Some(f64::NAN)), "alpha"),
            (config().with_alpha(Some(0.0)), "alpha"),
        ] {
            match PreparedMaxFlow::prepare(&g, &cfg) {
                Err(GraphError::InvalidConfig { parameter: p, .. }) => {
                    assert_eq!(p, parameter);
                }
                other => panic!("{parameter}: expected InvalidConfig, got {other:?}"),
            }
            // The one-shot wrapper delegates to prepare and rejects too.
            assert!(matches!(
                crate::approx_max_flow(&g, NodeId(0), NodeId(8), &cfg),
                Err(GraphError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn route_matches_free_function() {
        let g = gen::grid(4, 4, 1.0);
        let cfg = config();
        let b = Demand::st(&g, NodeId(0), NodeId(15), 1.5);
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let ses = session.route(&b).unwrap();
        let free = crate::route_demand(&g, session.approximator(), &b, &cfg).unwrap();
        assert_eq!(bits(ses.flow.values()), bits(free.flow.values()));
        assert_eq!(ses.iterations, free.iterations);
    }

    #[test]
    fn misuse_is_reported_as_errors() {
        let g = gen::path(5, 1.0);
        let mut session = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        assert!(matches!(
            session.max_flow(NodeId(0), NodeId(9)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            session.max_flow(NodeId(2), NodeId(2)),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            session.route(&Demand::zeros(3)),
            Err(GraphError::DemandMismatch {
                expected: 5,
                actual: 3
            })
        ));
        let mut disconnected = Graph::with_nodes(4);
        disconnected.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert!(matches!(
            PreparedMaxFlow::prepare(&disconnected, &config()),
            Err(GraphError::NotConnected)
        ));
        assert!(matches!(
            PreparedMaxFlow::prepare(&Graph::with_nodes(0), &config()),
            Err(GraphError::Empty)
        ));
        // A single node is connected but edgeless: the potential `smax` would
        // be evaluated over an empty vector, so it is rejected up front.
        assert!(matches!(
            PreparedMaxFlow::prepare(&Graph::with_nodes(1), &config()),
            Err(GraphError::NoEdges)
        ));
    }

    #[test]
    fn warm_start_reuses_the_previous_answer_and_stays_certified() {
        let g = gen::grid(5, 5, 1.0);
        let cfg = config().with_warm_start(true);
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let cold = session.max_flow(NodeId(0), NodeId(24)).unwrap();
        // Same pair again: the descent starts from the previous flow and
        // terminates almost immediately, but the answer stays feasible and
        // inside the certified bracket.
        let warm = session.max_flow(NodeId(0), NodeId(24)).unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert_eq!(warm.upper_bound.to_bits(), cold.upper_bound.to_bits());
        let value = warm
            .flow
            .validate_st_flow(&g, NodeId(0), NodeId(24), 1e-6)
            .unwrap();
        assert!((value - warm.value).abs() < 1e-6 * (1.0 + value.abs()));
        assert!(warm.value <= warm.upper_bound + 1e-9);
        assert!(warm.value >= 0.9 * cold.value, "warm answer lost quality");
        // The reversed pair warms from the negated flow.
        let reversed = session.max_flow(NodeId(24), NodeId(0)).unwrap();
        assert!(reversed.value > 0.0);
        reversed
            .flow
            .validate_st_flow(&g, NodeId(24), NodeId(0), 1e-6)
            .unwrap();
    }

    #[test]
    fn warm_start_off_is_byte_identical_and_history_free() {
        let g = gen::Family::Random.generate(24, 7);
        let mut plain = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        let mut explicit_off =
            PreparedMaxFlow::prepare(&g, &config().with_warm_start(false)).unwrap();
        let a1 = plain.max_flow(NodeId(0), NodeId(23)).unwrap();
        let a2 = plain.max_flow(NodeId(0), NodeId(23)).unwrap();
        let b1 = explicit_off.max_flow(NodeId(0), NodeId(23)).unwrap();
        // History-free: the repeat matches the first answer bit for bit, and
        // the explicit-off session matches the default session.
        assert_eq!(a1.value.to_bits(), a2.value.to_bits());
        assert_eq!(bits(a1.flow.values()), bits(a2.flow.values()));
        assert_eq!(a1.value.to_bits(), b1.value.to_bits());
        assert_eq!(bits(a1.flow.values()), bits(b1.flow.values()));
        assert_eq!(a1.iterations, b1.iterations);
    }

    #[test]
    fn accessors_expose_prepared_structures() {
        let g = gen::grid(4, 4, 1.0);
        let session = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        assert_eq!(session.graph().num_nodes(), 16);
        assert_eq!(session.approximator().num_nodes(), 16);
        assert_eq!(session.ensemble_stats().num_trees, 6);
        assert_eq!(session.repair_tree().num_nodes(), 16);
        assert!((session.config().epsilon - 0.2).abs() < 1e-12);
    }
}
