//! Build-once / query-many solver sessions.
//!
//! The paper's pipeline splits naturally into a *prepare* phase and a *query*
//! phase: the congestion approximator (the Räcke ensemble of Lemma 3.3), the
//! maximum-weight spanning tree used for residual repair and the CONGEST tree
//! decompositions (Lemma 8.2) depend only on the graph, while each max-flow
//! query is just `O(α²ε⁻³log²n)` cheap gradient iterations on top of them.
//! [`PreparedMaxFlow`] materializes that split: construction happens once in
//! [`PreparedMaxFlow::prepare`], after which any number of `(s, t)` or
//! demand-vector queries run against the cached structures — and, thanks to
//! the session-owned scratch buffers, with zero heap allocation per gradient
//! iteration in the steady state.
//!
//! The free functions [`crate::approx_max_flow`] / [`crate::route_demand`]
//! remain as thin convenience wrappers that prepare a throwaway session per
//! call; a session answers byte-identically to them for the same seed.

use capprox::{build_tree_ensemble, CongestionApproximator, EnsembleStats};
use flowgraph::{max_weight_spanning_tree, Demand, Graph, GraphError, NodeId, RootedTree};
use parallel::Parallelism;

use crate::almost_route::AlmostRouteScratch;
use crate::distributed::DistributedPlan;
use crate::solver::{
    max_flow_engine, route_demand_engine, MaxFlowConfig, MaxFlowResult, RoutingResult, WarmCache,
};

/// A prepared max-flow solver session: the congestion approximator, repair
/// tree and scratch buffers are built once, then arbitrarily many queries are
/// answered against them.
///
/// Queries take `&mut self` because they reuse the session's scratch buffers;
/// results are independent of query order and of how often the session has
/// been used (every query is answered byte-identically to a fresh one-shot
/// [`crate::approx_max_flow`] call with the same config).
///
/// The prepared structures themselves (graph, approximator, repair tree) are
/// immutable and `Send + Sync`; only the scratch is per-worker state. That is
/// what lets [`Self::par_max_flow_batch`] run independent `(s, t)` queries
/// concurrently — each worker borrows the shared structures and owns one
/// scratch from the session's pool — while staying byte-identical to the
/// sequential [`Self::max_flow_batch`].
///
/// # Example
///
/// ```
/// use flowgraph::{gen, NodeId};
/// use maxflow::{MaxFlowConfig, Parallelism, PreparedMaxFlow};
///
/// let g = gen::grid(5, 5, 1.0);
/// let mut session = PreparedMaxFlow::prepare(&g, &MaxFlowConfig::default()).unwrap();
/// let a = session.max_flow(NodeId(0), NodeId(24)).unwrap();
/// let b = session.max_flow(NodeId(4), NodeId(20)).unwrap();
/// assert!(a.value > 0.0 && b.value > 0.0);
///
/// // Opt into parallel execution: 4 workers answer a batch concurrently,
/// // byte-identical to the sequential batch (and to threads = 1).
/// let cfg = MaxFlowConfig::default().with_parallelism(Parallelism::with_threads(4));
/// let mut par_session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
/// let pairs = [(NodeId(0), NodeId(24)), (NodeId(4), NodeId(20))];
/// let batch = par_session.par_max_flow_batch(&pairs).unwrap();
/// assert_eq!(batch[0].value.to_bits(), a.value.to_bits());
/// assert_eq!(batch[1].value.to_bits(), b.value.to_bits());
/// ```
#[derive(Debug)]
pub struct PreparedMaxFlow<'g> {
    graph: &'g Graph,
    config: MaxFlowConfig,
    approximator: CongestionApproximator,
    ensemble_stats: EnsembleStats,
    repair_tree: RootedTree,
    scratch: AlmostRouteScratch,
    /// Per-worker scratch buffers for [`Self::par_max_flow_batch`], grown
    /// lazily to the configured thread count and reused across batches.
    scratch_pool: Vec<AlmostRouteScratch>,
    /// The last answered query, kept to warm-start the next one when
    /// [`MaxFlowConfig::warm_start`] is enabled (always `None` otherwise).
    warm_cache: Option<WarmCache>,
    pub(crate) plan: Option<DistributedPlan>,
}

impl<'g> PreparedMaxFlow<'g> {
    /// Builds the session: validates the graph, constructs the congestion
    /// approximator (the expensive part) and the maximum-weight spanning tree
    /// for residual repair, and pre-sizes the per-query scratch buffers.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfig`] for configurations that could
    /// never produce a meaningful run (see [`MaxFlowConfig::validate`]) and
    /// [`GraphError::Empty`] / [`GraphError::NotConnected`] for degenerate
    /// graphs.
    pub fn prepare(graph: &'g Graph, config: &MaxFlowConfig) -> Result<Self, GraphError> {
        config.validate()?;
        if graph.num_nodes() == 0 {
            return Err(GraphError::Empty);
        }
        if !graph.is_connected() {
            return Err(GraphError::NotConnected);
        }
        if graph.num_edges() == 0 {
            // A connected graph without edges is a single node; there is
            // nothing to route and the gradient potential is undefined on an
            // empty edge set (see `almost_route::smax`).
            return Err(GraphError::NoEdges);
        }
        // The scalable preparation path assembles the ensemble level by
        // level through the recursive j-tree hierarchy (Theorem 8.10); the
        // default path builds the Räcke ensemble directly on the graph.
        let (ensemble, hierarchy_stats) = match &config.hierarchy {
            Some(hierarchy) => {
                let (ensemble, stats) =
                    capprox::build_hierarchical_ensemble(graph, hierarchy, &config.racke)?;
                (ensemble, Some(stats))
            }
            None => (build_tree_ensemble(graph, &config.racke)?, None),
        };
        let ensemble_stats = ensemble.stats.clone();
        let approximator = match hierarchy_stats {
            Some(stats) => CongestionApproximator::from_ensemble_with_hierarchy(ensemble, stats)?,
            None => CongestionApproximator::from_ensemble(ensemble)?,
        };
        let repair_tree = max_weight_spanning_tree(graph, NodeId(0))?;
        let scratch = AlmostRouteScratch::for_instance(graph, &approximator);
        Ok(PreparedMaxFlow {
            graph,
            config: config.clone(),
            approximator,
            ensemble_stats,
            repair_tree,
            scratch,
            scratch_pool: Vec::new(),
            warm_cache: None,
            plan: None,
        })
    }

    /// Computes a `(1+ε)`-approximate maximum s–t flow using the prepared
    /// structures (Theorem 1.1, centralized execution).
    ///
    /// With [`MaxFlowConfig::warm_start`] enabled, the session additionally
    /// remembers this query's routing and seeds the next query's descent with
    /// it when the terminal pair repeats (in either orientation).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] / [`GraphError::SelfLoop`] for
    /// invalid terminals.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> Result<MaxFlowResult, GraphError> {
        max_flow_engine(
            self.graph,
            &self.approximator,
            &self.repair_tree,
            s,
            t,
            &self.config,
            &mut self.scratch,
            Some(&mut self.warm_cache),
        )
    }

    /// Answers a batch of s–t queries, equivalent to calling
    /// [`Self::max_flow`] once per pair in order (and tested to be exactly
    /// that); the batch form exists so callers can amortize at the call site
    /// without writing the loop.
    ///
    /// # Errors
    ///
    /// Fails fast with the first query error.
    pub fn max_flow_batch(
        &mut self,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Vec<MaxFlowResult>, GraphError> {
        let mut results = Vec::with_capacity(pairs.len());
        for &(s, t) in pairs {
            results.push(self.max_flow(s, t)?);
        }
        Ok(results)
    }

    /// [`Self::max_flow_batch`] with the independent `(s, t)` queries fanned
    /// across the workers of the session's configured
    /// [`MaxFlowConfig::parallelism`]: worker `w` answers queries
    /// `w, w + T, w + 2T, …` against the shared prepared structures using its
    /// own scratch from the session pool, so no mutable state is shared
    /// between workers and the results are **byte-identical** to the
    /// sequential batch (in order) for any thread count.
    ///
    /// Query fan-out and operator fan-out do not nest: batch workers run
    /// their queries with sequential operator evaluations, so the thread
    /// count is `T`, not `T²`.
    ///
    /// # Errors
    ///
    /// On invalid pairs, returns the error of the earliest offending pair —
    /// the same error [`Self::max_flow_batch`] fails fast with (the parallel
    /// form may have computed later queries before reporting it).
    pub fn par_max_flow_batch(
        &mut self,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Vec<MaxFlowResult>, GraphError> {
        let workers = self.config.parallelism.threads().min(pairs.len().max(1));
        // Warm-started queries depend on the order earlier answers were
        // produced in; fanning them across workers would make results depend
        // on the stripe layout, so the batch runs sequentially instead.
        if workers <= 1 || self.config.warm_start {
            return self.max_flow_batch(pairs);
        }
        let worker_config = self
            .config
            .clone()
            .with_parallelism(Parallelism::sequential());
        while self.scratch_pool.len() < workers {
            self.scratch_pool.push(AlmostRouteScratch::for_instance(
                self.graph,
                &self.approximator,
            ));
        }
        let graph = self.graph;
        let approximator = &self.approximator;
        let repair_tree = &self.repair_tree;
        let tasks: Vec<&mut AlmostRouteScratch> = self.scratch_pool[..workers].iter_mut().collect();
        // One worker's stripe of answers, each tagged with its pair index —
        // or the earliest failing pair index with its error.
        type WorkerStripe = Result<Vec<(usize, MaxFlowResult)>, (usize, GraphError)>;
        let partials: Vec<WorkerStripe> = parallel::join_workers(tasks, |w, scratch| {
            let mut mine = Vec::with_capacity(pairs.len().div_ceil(workers));
            for (i, &(s, t)) in pairs.iter().enumerate().skip(w).step_by(workers) {
                match max_flow_engine(
                    graph,
                    approximator,
                    repair_tree,
                    s,
                    t,
                    &worker_config,
                    scratch,
                    None,
                ) {
                    Ok(result) => mine.push((i, result)),
                    Err(err) => return Err((i, err)),
                }
            }
            Ok(mine)
        });
        // Fail with the earliest pair's error, like the sequential loop.
        if let Some((_, err)) = partials
            .iter()
            .filter_map(|p| p.as_ref().err())
            .min_by_key(|(i, _)| *i)
        {
            return Err(err.clone());
        }
        let mut out: Vec<Option<MaxFlowResult>> = (0..pairs.len()).map(|_| None).collect();
        for partial in partials {
            for (i, result) in partial.expect("errors handled above") {
                out[i] = Some(result);
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every query index was answered"))
            .collect())
    }

    /// Routes an arbitrary balanced demand vector with near-optimal
    /// congestion (Algorithm 1 without the max-flow scaling), using the
    /// prepared structures.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DemandMismatch`] if `b` does not cover exactly
    /// the graph's nodes.
    pub fn route(&mut self, b: &Demand) -> Result<RoutingResult, GraphError> {
        route_demand_engine(
            self.graph,
            &self.approximator,
            &self.repair_tree,
            b,
            &self.config,
            &mut self.scratch,
            None,
        )
    }

    /// The graph this session was prepared for.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The session's solver configuration.
    pub fn config(&self) -> &MaxFlowConfig {
        &self.config
    }

    /// The prepared congestion approximator.
    pub fn approximator(&self) -> &CongestionApproximator {
        &self.approximator
    }

    /// Construction statistics of the underlying tree ensemble.
    pub fn ensemble_stats(&self) -> &EnsembleStats {
        &self.ensemble_stats
    }

    /// The maximum-weight spanning tree used for residual repair.
    pub fn repair_tree(&self) -> &RootedTree {
        &self.repair_tree
    }
}

// A session must be shareable across threads for the distributed serving
// posture (worker pools borrowing one prepared session's structures); pin it
// at compile time so a future field can't silently revoke it.
const _: fn() = parallel::assert_send_sync::<PreparedMaxFlow<'static>>;

#[cfg(test)]
mod tests {
    use super::*;
    use capprox::RackeConfig;
    use flowgraph::gen;

    fn config() -> MaxFlowConfig {
        MaxFlowConfig::default()
            .with_epsilon(0.2)
            .with_racke(RackeConfig::default().with_num_trees(6).with_seed(11))
            .with_phases(Some(2))
            .with_max_iterations_per_phase(2_000)
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn session_matches_one_shot_byte_for_byte() {
        let g = gen::grid(5, 5, 1.0);
        let cfg = config();
        let one_shot = crate::approx_max_flow(&g, NodeId(0), NodeId(24), &cfg).unwrap();
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let ses = session.max_flow(NodeId(0), NodeId(24)).unwrap();
        assert_eq!(one_shot.value.to_bits(), ses.value.to_bits());
        assert_eq!(one_shot.upper_bound.to_bits(), ses.upper_bound.to_bits());
        assert_eq!(one_shot.iterations, ses.iterations);
        assert_eq!(bits(one_shot.flow.values()), bits(ses.flow.values()));
    }

    #[test]
    fn repeated_queries_are_deterministic() {
        // The scratch reuse must not leak state between queries: asking the
        // same question twice (with another query in between) gives the same
        // bytes.
        let g = gen::Family::Random.generate(30, 5);
        let mut session = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        let first = session.max_flow(NodeId(0), NodeId(29)).unwrap();
        let _interleaved = session.max_flow(NodeId(3), NodeId(17)).unwrap();
        let second = session.max_flow(NodeId(0), NodeId(29)).unwrap();
        assert_eq!(first.value.to_bits(), second.value.to_bits());
        assert_eq!(bits(first.flow.values()), bits(second.flow.values()));
    }

    #[test]
    fn batch_equals_query_loop() {
        let g = gen::grid(4, 4, 1.0);
        let cfg = config();
        let pairs = [
            (NodeId(0), NodeId(15)),
            (NodeId(3), NodeId(12)),
            (NodeId(0), NodeId(15)),
        ];
        let mut batch_session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let batch = batch_session.max_flow_batch(&pairs).unwrap();
        let mut loop_session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        for (b, &(s, t)) in batch.iter().zip(&pairs) {
            let l = loop_session.max_flow(s, t).unwrap();
            assert_eq!(b.value.to_bits(), l.value.to_bits());
            assert_eq!(bits(b.flow.values()), bits(l.flow.values()));
        }
    }

    #[test]
    fn par_batch_equals_sequential_batch_byte_for_byte() {
        let g = gen::Family::Random.generate(24, 9);
        let pairs = [
            (NodeId(0), NodeId(23)),
            (NodeId(5), NodeId(11)),
            (NodeId(23), NodeId(0)),
            (NodeId(2), NodeId(19)),
            (NodeId(7), NodeId(13)),
        ];
        let mut seq_session = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        let seq = seq_session.max_flow_batch(&pairs).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let cfg = config().with_parallelism(Parallelism::with_threads(threads));
            let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
            let par = session.par_max_flow_batch(&pairs).unwrap();
            assert_eq!(par.len(), seq.len());
            for (p, s) in par.iter().zip(&seq) {
                assert_eq!(p.value.to_bits(), s.value.to_bits(), "{threads} threads");
                assert_eq!(bits(p.flow.values()), bits(s.flow.values()));
                assert_eq!(p.iterations, s.iterations);
            }
            // A second batch through the warm pool is also byte-identical.
            let again = session.par_max_flow_batch(&pairs).unwrap();
            for (p, s) in again.iter().zip(&seq) {
                assert_eq!(p.value.to_bits(), s.value.to_bits());
            }
        }
    }

    #[test]
    fn par_batch_reports_earliest_pair_error() {
        let g = gen::grid(4, 4, 1.0);
        let cfg = config().with_parallelism(Parallelism::with_threads(4));
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let pairs = [
            (NodeId(0), NodeId(15)),
            (NodeId(3), NodeId(99)), // out of range: the earliest error
            (NodeId(7), NodeId(7)),  // self loop, later in the batch
        ];
        assert!(matches!(
            session.par_max_flow_batch(&pairs),
            Err(GraphError::NodeOutOfRange { node: 99, .. })
        ));
    }

    #[test]
    fn invalid_configs_are_rejected_at_prepare() {
        let g = gen::grid(3, 3, 1.0);
        for (cfg, parameter) in [
            (config().with_epsilon(0.0), "epsilon"),
            (config().with_epsilon(-1.0), "epsilon"),
            (config().with_epsilon(f64::NAN), "epsilon"),
            (
                config().with_max_iterations_per_phase(0),
                "max_iterations_per_phase",
            ),
            (config().with_phases(Some(0)), "phases"),
            (
                config().with_racke(RackeConfig::default().with_num_trees(0)),
                "racke.num_trees",
            ),
            (config().with_alpha(Some(f64::NAN)), "alpha"),
            (config().with_alpha(Some(0.0)), "alpha"),
        ] {
            match PreparedMaxFlow::prepare(&g, &cfg) {
                Err(GraphError::InvalidConfig { parameter: p, .. }) => {
                    assert_eq!(p, parameter);
                }
                other => panic!("{parameter}: expected InvalidConfig, got {other:?}"),
            }
            // The one-shot wrapper delegates to prepare and rejects too.
            assert!(matches!(
                crate::approx_max_flow(&g, NodeId(0), NodeId(8), &cfg),
                Err(GraphError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn route_matches_free_function() {
        let g = gen::grid(4, 4, 1.0);
        let cfg = config();
        let b = Demand::st(&g, NodeId(0), NodeId(15), 1.5);
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let ses = session.route(&b).unwrap();
        let free = crate::route_demand(&g, session.approximator(), &b, &cfg).unwrap();
        assert_eq!(bits(ses.flow.values()), bits(free.flow.values()));
        assert_eq!(ses.iterations, free.iterations);
    }

    #[test]
    fn misuse_is_reported_as_errors() {
        let g = gen::path(5, 1.0);
        let mut session = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        assert!(matches!(
            session.max_flow(NodeId(0), NodeId(9)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            session.max_flow(NodeId(2), NodeId(2)),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            session.route(&Demand::zeros(3)),
            Err(GraphError::DemandMismatch {
                expected: 5,
                actual: 3
            })
        ));
        let mut disconnected = Graph::with_nodes(4);
        disconnected.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert!(matches!(
            PreparedMaxFlow::prepare(&disconnected, &config()),
            Err(GraphError::NotConnected)
        ));
        assert!(matches!(
            PreparedMaxFlow::prepare(&Graph::with_nodes(0), &config()),
            Err(GraphError::Empty)
        ));
        // A single node is connected but edgeless: the potential `smax` would
        // be evaluated over an empty vector, so it is rejected up front.
        assert!(matches!(
            PreparedMaxFlow::prepare(&Graph::with_nodes(1), &config()),
            Err(GraphError::NoEdges)
        ));
    }

    #[test]
    fn warm_start_reuses_the_previous_answer_and_stays_certified() {
        let g = gen::grid(5, 5, 1.0);
        let cfg = config().with_warm_start(true);
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let cold = session.max_flow(NodeId(0), NodeId(24)).unwrap();
        // Same pair again: the descent starts from the previous flow and
        // terminates almost immediately, but the answer stays feasible and
        // inside the certified bracket.
        let warm = session.max_flow(NodeId(0), NodeId(24)).unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert_eq!(warm.upper_bound.to_bits(), cold.upper_bound.to_bits());
        let value = warm
            .flow
            .validate_st_flow(&g, NodeId(0), NodeId(24), 1e-6)
            .unwrap();
        assert!((value - warm.value).abs() < 1e-6 * (1.0 + value.abs()));
        assert!(warm.value <= warm.upper_bound + 1e-9);
        assert!(warm.value >= 0.9 * cold.value, "warm answer lost quality");
        // The reversed pair warms from the negated flow.
        let reversed = session.max_flow(NodeId(24), NodeId(0)).unwrap();
        assert!(reversed.value > 0.0);
        reversed
            .flow
            .validate_st_flow(&g, NodeId(24), NodeId(0), 1e-6)
            .unwrap();
    }

    #[test]
    fn warm_start_off_is_byte_identical_and_history_free() {
        let g = gen::Family::Random.generate(24, 7);
        let mut plain = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        let mut explicit_off =
            PreparedMaxFlow::prepare(&g, &config().with_warm_start(false)).unwrap();
        let a1 = plain.max_flow(NodeId(0), NodeId(23)).unwrap();
        let a2 = plain.max_flow(NodeId(0), NodeId(23)).unwrap();
        let b1 = explicit_off.max_flow(NodeId(0), NodeId(23)).unwrap();
        // History-free: the repeat matches the first answer bit for bit, and
        // the explicit-off session matches the default session.
        assert_eq!(a1.value.to_bits(), a2.value.to_bits());
        assert_eq!(bits(a1.flow.values()), bits(a2.flow.values()));
        assert_eq!(a1.value.to_bits(), b1.value.to_bits());
        assert_eq!(bits(a1.flow.values()), bits(b1.flow.values()));
        assert_eq!(a1.iterations, b1.iterations);
    }

    #[test]
    fn accessors_expose_prepared_structures() {
        let g = gen::grid(4, 4, 1.0);
        let session = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        assert_eq!(session.graph().num_nodes(), 16);
        assert_eq!(session.approximator().num_nodes(), 16);
        assert_eq!(session.ensemble_stats().num_trees, 6);
        assert_eq!(session.repair_tree().num_nodes(), 16);
        assert!((session.config().epsilon - 0.2).abs() < 1e-12);
    }
}
