//! Build-once / query-many solver sessions.
//!
//! The paper's pipeline splits naturally into a *prepare* phase and a *query*
//! phase: the congestion approximator (the Räcke ensemble of Lemma 3.3), the
//! maximum-weight spanning tree used for residual repair and the CONGEST tree
//! decompositions (Lemma 8.2) depend only on the graph, while each max-flow
//! query is just `O(α²ε⁻³log²n)` cheap gradient iterations on top of them.
//! [`PreparedMaxFlow`] materializes that split: construction happens once in
//! [`PreparedMaxFlow::prepare`], after which any number of `(s, t)` or
//! demand-vector queries run against the cached structures — and, thanks to
//! the session-owned scratch buffers, with zero heap allocation per gradient
//! iteration in the steady state.
//!
//! The free functions [`crate::approx_max_flow`] / [`crate::route_demand`]
//! remain as thin convenience wrappers that prepare a throwaway session per
//! call; a session answers byte-identically to them for the same seed.

use capprox::{build_tree_ensemble, CongestionApproximator, EnsembleStats};
use flowgraph::{max_weight_spanning_tree, Demand, Graph, GraphError, NodeId, RootedTree};

use crate::almost_route::AlmostRouteScratch;
use crate::distributed::DistributedPlan;
use crate::solver::{
    max_flow_engine, route_demand_engine, MaxFlowConfig, MaxFlowResult, RoutingResult,
};

/// A prepared max-flow solver session: the congestion approximator, repair
/// tree and scratch buffers are built once, then arbitrarily many queries are
/// answered against them.
///
/// Queries take `&mut self` because they reuse the session's scratch buffers;
/// results are independent of query order and of how often the session has
/// been used (every query is answered byte-identically to a fresh one-shot
/// [`crate::approx_max_flow`] call with the same config).
///
/// # Example
///
/// ```
/// use flowgraph::{gen, NodeId};
/// use maxflow::{MaxFlowConfig, PreparedMaxFlow};
///
/// let g = gen::grid(5, 5, 1.0);
/// let mut session = PreparedMaxFlow::prepare(&g, &MaxFlowConfig::default()).unwrap();
/// let a = session.max_flow(NodeId(0), NodeId(24)).unwrap();
/// let b = session.max_flow(NodeId(4), NodeId(20)).unwrap();
/// assert!(a.value > 0.0 && b.value > 0.0);
/// ```
#[derive(Debug)]
pub struct PreparedMaxFlow<'g> {
    graph: &'g Graph,
    config: MaxFlowConfig,
    approximator: CongestionApproximator,
    ensemble_stats: EnsembleStats,
    repair_tree: RootedTree,
    scratch: AlmostRouteScratch,
    pub(crate) plan: Option<DistributedPlan>,
}

impl<'g> PreparedMaxFlow<'g> {
    /// Builds the session: validates the graph, constructs the congestion
    /// approximator (the expensive part) and the maximum-weight spanning tree
    /// for residual repair, and pre-sizes the per-query scratch buffers.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] / [`GraphError::NotConnected`] for
    /// degenerate graphs.
    pub fn prepare(graph: &'g Graph, config: &MaxFlowConfig) -> Result<Self, GraphError> {
        if graph.num_nodes() == 0 {
            return Err(GraphError::Empty);
        }
        if !graph.is_connected() {
            return Err(GraphError::NotConnected);
        }
        let ensemble = build_tree_ensemble(graph, &config.racke)?;
        let ensemble_stats = ensemble.stats.clone();
        let approximator = CongestionApproximator::from_ensemble(ensemble);
        let repair_tree = max_weight_spanning_tree(graph, NodeId(0))?;
        let scratch = AlmostRouteScratch::for_instance(graph, &approximator);
        Ok(PreparedMaxFlow {
            graph,
            config: config.clone(),
            approximator,
            ensemble_stats,
            repair_tree,
            scratch,
            plan: None,
        })
    }

    /// Computes a `(1+ε)`-approximate maximum s–t flow using the prepared
    /// structures (Theorem 1.1, centralized execution).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] / [`GraphError::SelfLoop`] for
    /// invalid terminals.
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> Result<MaxFlowResult, GraphError> {
        max_flow_engine(
            self.graph,
            &self.approximator,
            &self.repair_tree,
            s,
            t,
            &self.config,
            &mut self.scratch,
        )
    }

    /// Answers a batch of s–t queries, equivalent to calling
    /// [`Self::max_flow`] once per pair in order (and tested to be exactly
    /// that); the batch form exists so callers can amortize at the call site
    /// without writing the loop.
    ///
    /// # Errors
    ///
    /// Fails fast with the first query error.
    pub fn max_flow_batch(
        &mut self,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Vec<MaxFlowResult>, GraphError> {
        let mut results = Vec::with_capacity(pairs.len());
        for &(s, t) in pairs {
            results.push(self.max_flow(s, t)?);
        }
        Ok(results)
    }

    /// Routes an arbitrary balanced demand vector with near-optimal
    /// congestion (Algorithm 1 without the max-flow scaling), using the
    /// prepared structures.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DemandMismatch`] if `b` does not cover exactly
    /// the graph's nodes.
    pub fn route(&mut self, b: &Demand) -> Result<RoutingResult, GraphError> {
        route_demand_engine(
            self.graph,
            &self.approximator,
            &self.repair_tree,
            b,
            &self.config,
            &mut self.scratch,
        )
    }

    /// The graph this session was prepared for.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The session's solver configuration.
    pub fn config(&self) -> &MaxFlowConfig {
        &self.config
    }

    /// The prepared congestion approximator.
    pub fn approximator(&self) -> &CongestionApproximator {
        &self.approximator
    }

    /// Construction statistics of the underlying tree ensemble.
    pub fn ensemble_stats(&self) -> &EnsembleStats {
        &self.ensemble_stats
    }

    /// The maximum-weight spanning tree used for residual repair.
    pub fn repair_tree(&self) -> &RootedTree {
        &self.repair_tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capprox::RackeConfig;
    use flowgraph::gen;

    fn config() -> MaxFlowConfig {
        MaxFlowConfig::default()
            .with_epsilon(0.2)
            .with_racke(RackeConfig::default().with_num_trees(6).with_seed(11))
            .with_phases(Some(2))
            .with_max_iterations_per_phase(2_000)
    }

    fn bits(xs: &[f64]) -> Vec<u64> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn session_matches_one_shot_byte_for_byte() {
        let g = gen::grid(5, 5, 1.0);
        let cfg = config();
        let one_shot = crate::approx_max_flow(&g, NodeId(0), NodeId(24), &cfg).unwrap();
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let ses = session.max_flow(NodeId(0), NodeId(24)).unwrap();
        assert_eq!(one_shot.value.to_bits(), ses.value.to_bits());
        assert_eq!(one_shot.upper_bound.to_bits(), ses.upper_bound.to_bits());
        assert_eq!(one_shot.iterations, ses.iterations);
        assert_eq!(bits(one_shot.flow.values()), bits(ses.flow.values()));
    }

    #[test]
    fn repeated_queries_are_deterministic() {
        // The scratch reuse must not leak state between queries: asking the
        // same question twice (with another query in between) gives the same
        // bytes.
        let g = gen::Family::Random.generate(30, 5);
        let mut session = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        let first = session.max_flow(NodeId(0), NodeId(29)).unwrap();
        let _interleaved = session.max_flow(NodeId(3), NodeId(17)).unwrap();
        let second = session.max_flow(NodeId(0), NodeId(29)).unwrap();
        assert_eq!(first.value.to_bits(), second.value.to_bits());
        assert_eq!(bits(first.flow.values()), bits(second.flow.values()));
    }

    #[test]
    fn batch_equals_query_loop() {
        let g = gen::grid(4, 4, 1.0);
        let cfg = config();
        let pairs = [
            (NodeId(0), NodeId(15)),
            (NodeId(3), NodeId(12)),
            (NodeId(0), NodeId(15)),
        ];
        let mut batch_session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let batch = batch_session.max_flow_batch(&pairs).unwrap();
        let mut loop_session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        for (b, &(s, t)) in batch.iter().zip(&pairs) {
            let l = loop_session.max_flow(s, t).unwrap();
            assert_eq!(b.value.to_bits(), l.value.to_bits());
            assert_eq!(bits(b.flow.values()), bits(l.flow.values()));
        }
    }

    #[test]
    fn route_matches_free_function() {
        let g = gen::grid(4, 4, 1.0);
        let cfg = config();
        let b = Demand::st(&g, NodeId(0), NodeId(15), 1.5);
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).unwrap();
        let ses = session.route(&b).unwrap();
        let free = crate::route_demand(&g, session.approximator(), &b, &cfg).unwrap();
        assert_eq!(bits(ses.flow.values()), bits(free.flow.values()));
        assert_eq!(ses.iterations, free.iterations);
    }

    #[test]
    fn misuse_is_reported_as_errors() {
        let g = gen::path(5, 1.0);
        let mut session = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        assert!(matches!(
            session.max_flow(NodeId(0), NodeId(9)),
            Err(GraphError::NodeOutOfRange { .. })
        ));
        assert!(matches!(
            session.max_flow(NodeId(2), NodeId(2)),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            session.route(&Demand::zeros(3)),
            Err(GraphError::DemandMismatch {
                expected: 5,
                actual: 3
            })
        ));
        let mut disconnected = Graph::with_nodes(4);
        disconnected.add_edge(NodeId(0), NodeId(1), 1.0).unwrap();
        assert!(matches!(
            PreparedMaxFlow::prepare(&disconnected, &config()),
            Err(GraphError::NotConnected)
        ));
        assert!(matches!(
            PreparedMaxFlow::prepare(&Graph::with_nodes(0), &config()),
            Err(GraphError::Empty)
        ));
    }

    #[test]
    fn accessors_expose_prepared_structures() {
        let g = gen::grid(4, 4, 1.0);
        let session = PreparedMaxFlow::prepare(&g, &config()).unwrap();
        assert_eq!(session.graph().num_nodes(), 16);
        assert_eq!(session.approximator().num_nodes(), 16);
        assert_eq!(session.ensemble_stats().num_trees, 6);
        assert_eq!(session.repair_tree().num_nodes(), 16);
        assert!((session.config().epsilon - 0.2).abs() < 1e-12);
    }
}
