//! Pins the session API's zero-allocation claim: once the scratch buffers
//! are warm, extra gradient iterations perform **no** heap allocation — the
//! allocation count of an `almost_route_with` call is independent of how many
//! iterations it runs.
//!
//! Measured with a counting global allocator (the only place in the
//! repository that needs `unsafe`; the library crates all
//! `forbid(unsafe_code)`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use capprox::{CongestionApproximator, RackeConfig};
use flowgraph::{gen, Demand, NodeId};
use maxflow::{almost_route_with, AlmostRouteConfig, AlmostRouteScratch, PreparedMaxFlow};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

fn descent_config(max_iterations: usize) -> AlmostRouteConfig {
    // A tight ε with a large working α keeps δ above the stopping threshold,
    // so the iteration cap is what ends the loop and the two runs below
    // differ only in iteration count.
    AlmostRouteConfig::default()
        .with_epsilon(0.05)
        .with_alpha(Some(8.0))
        .with_max_iterations(max_iterations)
}

#[test]
fn gradient_iterations_do_not_allocate_once_scratch_is_warm() {
    let g = gen::grid(6, 6, 1.0);
    let r =
        CongestionApproximator::build(&g, &RackeConfig::default().with_num_trees(4).with_seed(7))
            .expect("grid is connected");
    let b = Demand::st(&g, NodeId(0), NodeId(35), 1.0);
    let mut scratch = AlmostRouteScratch::for_instance(&g, &r);

    // Warm every buffer (first call may size vectors).
    let warm = almost_route_with(&g, &r, &b, &descent_config(8), &mut scratch);
    assert!(warm.hit_iteration_cap, "cap must bind for this experiment");

    let (alloc_short, short) =
        allocations_during(|| almost_route_with(&g, &r, &b, &descent_config(8), &mut scratch));
    let (alloc_long, long) =
        allocations_during(|| almost_route_with(&g, &r, &b, &descent_config(120), &mut scratch));

    assert!(short.hit_iteration_cap && long.hit_iteration_cap);
    assert!(
        long.iterations >= short.iterations + 100,
        "experiment needs a real iteration-count gap ({} vs {})",
        long.iterations,
        short.iterations
    );
    // The extra ~112 iterations must not have allocated: per-call costs (the
    // working demand clone, the result flow) are identical, so the counts
    // must match exactly.
    assert_eq!(
        alloc_short, alloc_long,
        "heap allocations grew with the iteration count: {alloc_short} for {} iterations vs \
         {alloc_long} for {} iterations",
        short.iterations, long.iterations
    );
}

#[test]
fn session_queries_do_not_scale_allocations_with_iterations() {
    // End-to-end flavor of the same claim: two sessions differing only in
    // the per-phase iteration cap allocate the same amount per query.
    let g = gen::grid(6, 6, 1.0);
    let base = maxflow::MaxFlowConfig::default()
        .with_epsilon(0.05)
        .with_alpha(Some(8.0))
        .with_racke(RackeConfig::default().with_num_trees(4).with_seed(7))
        .with_phases(Some(1));

    let count_for = |cap: usize| {
        let cfg = base.clone().with_max_iterations_per_phase(cap);
        let mut session = PreparedMaxFlow::prepare(&g, &cfg).expect("connected");
        // Warm query, then the measured one.
        let warm = session.max_flow(NodeId(0), NodeId(35)).expect("valid");
        let (allocs, result) =
            allocations_during(|| session.max_flow(NodeId(0), NodeId(35)).expect("valid"));
        assert_eq!(warm.iterations, result.iterations);
        (allocs, result.iterations)
    };

    let (alloc_short, iters_short) = count_for(8);
    let (alloc_long, iters_long) = count_for(120);
    assert!(
        iters_long >= iters_short + 100,
        "experiment needs a real iteration-count gap ({iters_long} vs {iters_short})"
    );
    assert_eq!(
        alloc_short, alloc_long,
        "per-query allocations grew with the iteration count"
    );
}
