//! `MaxFlowConfig` coverage: the serde-shaped round-trip (including the
//! `#[serde(skip)]` contract on the machine-specific parallelism fields) and
//! a table-driven `validate()` suite covering every
//! `GraphError::InvalidConfig` arm.

use capprox::RackeConfig;
use flowgraph::GraphError;
use maxflow::{MaxFlowConfig, Parallelism};

fn sample_config() -> MaxFlowConfig {
    MaxFlowConfig::default()
        .with_epsilon(0.25)
        .with_racke(
            RackeConfig::default()
                .with_num_trees(6)
                .with_seed(0xfeed_beef)
                .with_target_quality(1.75),
        )
        .with_alpha(Some(3.5))
        .with_max_iterations_per_phase(1234)
        .with_phases(Some(4))
        .with_warm_start(true)
        .with_parallelism(Parallelism::with_threads(8))
}

#[test]
fn round_trip_preserves_every_serialized_field() {
    let config = sample_config();
    let restored = MaxFlowConfig::from_json(&config.to_json().unwrap()).unwrap();
    assert_eq!(restored.epsilon.to_bits(), config.epsilon.to_bits());
    assert_eq!(restored.racke.num_trees, config.racke.num_trees);
    assert_eq!(
        restored.racke.mwu_step.to_bits(),
        config.racke.mwu_step.to_bits()
    );
    assert_eq!(restored.racke.seed, config.racke.seed);
    assert_eq!(
        restored.racke.lowstretch_z.to_bits(),
        config.racke.lowstretch_z.to_bits()
    );
    assert_eq!(
        restored.alpha.map(f64::to_bits),
        config.alpha.map(f64::to_bits)
    );
    assert_eq!(
        restored.max_iterations_per_phase,
        config.max_iterations_per_phase
    );
    assert_eq!(restored.phases, config.phases);
    assert_eq!(
        restored.racke.target_quality.map(f64::to_bits),
        config.racke.target_quality.map(f64::to_bits)
    );
    assert_eq!(restored.warm_start, config.warm_start);
    // A round-tripped valid config stays valid.
    restored.validate().unwrap();
}

#[test]
fn skipped_parallelism_deserializes_to_the_sequential_default() {
    // The #[serde(skip)] fields never travel: an 8-thread config serializes
    // without any parallelism key and comes back sequential.
    let config = sample_config();
    assert_eq!(config.parallelism.threads(), 8);
    let json = config.to_json().unwrap();
    assert!(
        !json.contains("parallelism") && !json.contains("threads"),
        "skipped fields must not be serialized: {json}"
    );
    let restored = MaxFlowConfig::from_json(&json).unwrap();
    assert_eq!(restored.parallelism.threads(), 1);
    assert_eq!(
        restored.parallelism.threads(),
        Parallelism::default().threads()
    );
}

#[test]
fn explicit_parallelism_key_is_rejected() {
    let err = MaxFlowConfig::from_json(r#"{"epsilon":0.1,"parallelism":{"threads":64}}"#)
        .expect_err("skip-annotated fields may not appear in documents");
    match err {
        GraphError::InvalidConfig { parameter, reason } => {
            assert_eq!(parameter, "parallelism");
            assert!(reason.contains("skip"), "{reason}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn nulls_and_absent_fields_restore_defaults() {
    // `null` is an explicit None for the Option fields.
    let restored = MaxFlowConfig::from_json(
        r#"{"epsilon":0.5,"alpha":null,"phases":null,"racke":{"num_trees":null}}"#,
    )
    .unwrap();
    assert_eq!(restored.alpha, None);
    assert_eq!(restored.phases, None);
    assert_eq!(restored.racke.num_trees, None);
    let trimless = MaxFlowConfig::from_json(r#"{"racke":{"target_quality":null}}"#).unwrap();
    assert_eq!(trimless.racke.target_quality, None);
    // Absent fields mean "the default".
    let defaults = MaxFlowConfig::default();
    assert!(!defaults.warm_start, "warm_start must default off");
    assert_eq!(defaults.racke.target_quality, None);
    let sparse = MaxFlowConfig::from_json(r#"{"epsilon":0.5}"#).unwrap();
    assert!(!sparse.warm_start);
    assert_eq!(
        sparse.max_iterations_per_phase,
        defaults.max_iterations_per_phase
    );
    assert_eq!(sparse.racke.seed, defaults.racke.seed);
    assert_eq!(
        sparse.racke.mwu_step.to_bits(),
        defaults.racke.mwu_step.to_bits()
    );
    // An empty document is exactly the default config.
    let empty = MaxFlowConfig::from_json("{}").unwrap();
    assert_eq!(empty.epsilon.to_bits(), defaults.epsilon.to_bits());
    assert_eq!(empty.phases, defaults.phases);
}

#[test]
fn non_finite_floats_are_rejected_at_serialization_time() {
    // Regression (documented asymmetry, since fixed): `to_json` used to emit
    // `null` for non-finite floats — a *valid* JSON document that
    // `from_json` then rejected for required float fields (and silently
    // turned `Some(NaN)` alpha into `None`). The round-trip guarantee is now
    // unconditional: `to_json` refuses non-finite configs up front, naming
    // the offending field, and every document it does emit parses back.
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        match sample_config().with_epsilon(bad).to_json() {
            Err(GraphError::InvalidConfig { parameter, reason }) => {
                assert_eq!(parameter, "epsilon");
                assert!(reason.contains("finite"), "{reason}");
            }
            other => panic!("epsilon={bad}: expected InvalidConfig, got {other:?}"),
        }
    }
    // Optional floats are rejected too — the old behavior resurrected
    // `Some(NaN)` as `None`, a silent config change.
    match sample_config().with_alpha(Some(f64::NAN)).to_json() {
        Err(GraphError::InvalidConfig { parameter, .. }) => assert_eq!(parameter, "alpha"),
        other => panic!("alpha=NaN: expected InvalidConfig, got {other:?}"),
    }
    // The NaN-epsilon config from the issue: validate() and to_json() agree
    // that it never leaves the process.
    let nan_eps = sample_config().with_epsilon(f64::NAN);
    assert!(nan_eps.validate().is_err());
    assert!(nan_eps.to_json().is_err());
    // And every *finite* config still round-trips exactly.
    let json = sample_config().to_json().unwrap();
    let restored = MaxFlowConfig::from_json(&json).unwrap();
    assert_eq!(restored.alpha.map(f64::to_bits), Some(3.5f64.to_bits()));
}

#[test]
fn malformed_documents_are_rejected() {
    for bad in [
        "",
        "{",
        "{}}",
        "not json at all",
        r#"{"epsilon":}"#,
        r#"{"epsilon":0.1"#,
        r#"{"epsilon":0.1} trailing"#,
        r#"{"epsilon":"a string"}"#,
        r#"{"unknown_field":1}"#,
        r#"{"racke":{"unknown":1}}"#,
        r#"{"max_iterations_per_phase":-3}"#,
        r#"{"epsilon":0.1 "alpha":null}"#,
        r#"{"warm_start":1}"#,
        r#"{"warm_start":"yes"}"#,
    ] {
        assert!(
            MaxFlowConfig::from_json(bad).is_err(),
            "document {bad:?} must be rejected"
        );
    }
}

/// Every `GraphError::InvalidConfig` arm of `validate()`, table-driven: the
/// offending builder call, the parameter the error must name, and a word the
/// reason must contain.
#[test]
fn validate_rejects_every_invalid_config_arm() {
    let base = sample_config;
    let cases: Vec<(MaxFlowConfig, &str, &str)> = vec![
        (base().with_epsilon(0.0), "epsilon", "finite"),
        (base().with_epsilon(-1.0), "epsilon", "finite"),
        (base().with_epsilon(f64::NAN), "epsilon", "finite"),
        (base().with_epsilon(f64::INFINITY), "epsilon", "finite"),
        (
            base().with_max_iterations_per_phase(0),
            "max_iterations_per_phase",
            "at least 1",
        ),
        (base().with_phases(Some(0)), "phases", "at least 1"),
        (
            base().with_racke(RackeConfig::default().with_num_trees(0)),
            "racke.num_trees",
            "at least 1",
        ),
        (base().with_alpha(Some(0.0)), "alpha", "finite"),
        (base().with_alpha(Some(-2.0)), "alpha", "finite"),
        (base().with_alpha(Some(f64::NAN)), "alpha", "finite"),
        (
            base().with_alpha(Some(f64::NEG_INFINITY)),
            "alpha",
            "finite",
        ),
        (
            base().with_racke(RackeConfig::default().with_target_quality(0.5)),
            "racke.target_quality",
            "finite",
        ),
        (
            base().with_racke(RackeConfig::default().with_target_quality(f64::NAN)),
            "racke.target_quality",
            "finite",
        ),
        (
            base().with_racke(RackeConfig::default().with_target_quality(f64::INFINITY)),
            "racke.target_quality",
            "finite",
        ),
    ];
    for (config, parameter, reason_word) in cases {
        match config.validate() {
            Err(GraphError::InvalidConfig {
                parameter: p,
                reason,
            }) => {
                assert_eq!(p, parameter, "wrong parameter named");
                assert!(
                    reason.contains(reason_word),
                    "{parameter}: reason {reason:?} lacks {reason_word:?}"
                );
                // The Display form names the offending parameter too.
                let display = GraphError::InvalidConfig {
                    parameter: p,
                    reason,
                }
                .to_string();
                assert!(display.contains(parameter), "{display}");
            }
            other => panic!("{parameter}: expected InvalidConfig, got {other:?}"),
        }
    }
    // The happy path: every boundary-but-legal knob passes.
    for ok in [
        base(),
        base().with_alpha(None),
        base().with_phases(None),
        base().with_racke(RackeConfig::default()),
        base().with_epsilon(f64::MIN_POSITIVE),
        base().with_max_iterations_per_phase(1),
        base().with_phases(Some(1)),
        base().with_racke(RackeConfig::default().with_target_quality(1.0)),
        base().with_warm_start(false),
    ] {
        ok.validate().unwrap();
    }
}
